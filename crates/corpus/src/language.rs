//! The topical language model that turns topic labels into article text.
//!
//! Each article is a bag of tokens drawn from a two-component mixture:
//!
//! * with probability `topic_fraction`, a **topic-specific term** from the
//!   article's topic (each topic owns `terms_per_topic` terms, drawn with a
//!   Zipfian rank distribution so topics have signature head terms);
//! * otherwise, a **background term** from a shared Zipfian vocabulary
//!   (function-word-like noise that all topics share).
//!
//! This preserves the property the paper's experiments rely on: documents of
//! the same topic share enough vocabulary to cluster, while the heavy shared
//! background keeps the task non-trivial (paper F1 ∈ [0.3, 0.7]).

use rand::Rng;

/// Samples ranks 0..n with P(r) ∝ 1/(r+1)^s via an inverse-CDF table.
#[derive(Debug, Clone)]
pub(crate) struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf table needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Self { cdf }
    }

    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.cdf.len()
    }
}

/// Configuration and sampling tables of the synthetic language.
#[derive(Debug, Clone)]
pub struct LanguageModel {
    background_vocab: usize,
    terms_per_topic: usize,
    topic_fraction: f64,
    doc_len_min: usize,
    doc_len_max: usize,
    background_zipf: ZipfTable,
    topic_zipf: ZipfTable,
    drift_period_days: f64,
    drift_step: usize,
    family_leak: f64,
    rare_fraction: f64,
}

/// Topics are grouped into *families* of this size; a `family_leak` share of
/// topical tokens comes from the family's shared pool, so related topics
/// (e.g. the 1998 Iraq-conflict and Israeli-Palestinian stories) overlap in
/// vocabulary and clusters are not trivially pure.
pub const FAMILY_SIZE: usize = 4;

impl LanguageModel {
    /// Builds a language model.
    ///
    /// * `background_vocab` — size of the shared background vocabulary.
    /// * `terms_per_topic` — signature terms owned by each topic.
    /// * `topic_fraction` — probability a token is topic-specific.
    /// * `doc_len_min..=doc_len_max` — uniform article length range (tokens).
    pub fn new(
        background_vocab: usize,
        terms_per_topic: usize,
        topic_fraction: f64,
        doc_len_min: usize,
        doc_len_max: usize,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&topic_fraction),
            "topic_fraction must be a probability"
        );
        assert!(doc_len_min > 0 && doc_len_min <= doc_len_max);
        Self {
            background_vocab,
            terms_per_topic,
            topic_fraction,
            doc_len_min,
            doc_len_max,
            background_zipf: ZipfTable::new(background_vocab, 1.05),
            topic_zipf: ZipfTable::new(terms_per_topic, 0.8),
            drift_period_days: 15.0,
            drift_step: 10,
            family_leak: 0.35,
            rare_fraction: 0.15,
        }
    }

    /// Sets the share of topical tokens drawn from the topic family's shared
    /// pool (cross-topic vocabulary overlap) and the share of all tokens that
    /// are near-unique rare terms (names, places, quotes). Both default on;
    /// pass zeros for a maximally separable corpus.
    pub fn with_noise(mut self, family_leak: f64, rare_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&family_leak));
        assert!((0.0..=1.0).contains(&rare_fraction));
        self.family_leak = family_leak;
        self.rare_fraction = rare_fraction;
        self
    }

    /// The defaults used by the corpus generator: 2,000 background terms,
    /// 40 signature terms per topic, 45% topical tokens, 60–180-token
    /// articles, and subtopic drift every 15 days.
    pub fn standard() -> Self {
        Self::new(2000, 40, 0.45, 60, 180)
    }

    /// Configures **topic drift**: every `period_days`, a topic's window of
    /// "hot" signature terms slides forward by `step` ranks. The window
    /// never wraps back onto old ranks, so vocabulary from sub-stories more
    /// than `terms_per_topic / step` periods apart is disjoint — real news
    /// topics shift sub-stories over a month (the Lewinsky case of late
    /// January is worded differently from that of June) and do not cycle
    /// back to their January wording. This monotone drift is what gives
    /// conventional long-half-life clustering its F1 edge in the paper's
    /// Table 4. `step = 0` disables drift.
    ///
    /// (An earlier revision rotated ranks *modulo* the term pool; over a
    /// 178-day corpus the offset `floor(day/15)·10 mod 40` aliased with the
    /// facet offsets, making day-170 articles share *more* vocabulary with
    /// day-0 articles than two contemporaneous facets share with each
    /// other — the opposite of drift.)
    pub fn with_drift(mut self, period_days: f64, step: usize) -> Self {
        assert!(period_days > 0.0, "drift period must be positive");
        self.drift_period_days = period_days;
        self.drift_step = step;
        self
    }

    /// Number of signature terms per topic.
    pub fn terms_per_topic(&self) -> usize {
        self.terms_per_topic
    }

    /// Size of the background vocabulary.
    pub fn background_vocab(&self) -> usize {
        self.background_vocab
    }

    /// Generates the body text of one article of topic index `topic_idx`
    /// (a dense 0-based index assigned by the generator, not the TDT2 id)
    /// published on day `day`. Subtopic drift rotates the topic's hot terms
    /// with `day` (see [`LanguageModel::with_drift`]), and each article
    /// belongs to one of a few *facets* (sub-events) of its topic — facet 0
    /// is the main story (~57% of articles), facets 1–2 are side stories
    /// with shifted vocabulary. Facets are why even a conventional clustering
    /// rarely reaches recall 1.0 on a topic (paper Figures 1–4).
    pub fn generate_text<R: Rng>(&self, topic_idx: usize, day: f64, rng: &mut R) -> String {
        let len = rng.gen_range(self.doc_len_min..=self.doc_len_max);
        let facet = match rng.gen::<f64>() {
            u if u < 0.57 => 0usize,
            u if u < 0.86 => 1,
            _ => 2,
        };
        let offset =
            (day.max(0.0) / self.drift_period_days).floor() as usize * self.drift_step + facet * 9;
        let mut out = String::with_capacity(len * 8);
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            let u: f64 = rng.gen();
            if u < self.rare_fraction {
                // near-unique rare term (names, places, quotes)
                out.push_str(&format!("rr{:06}", rng.gen_range(0..500_000)));
            } else if u < self.rare_fraction + self.topic_fraction {
                if rng.gen::<f64>() < self.family_leak {
                    // shared vocabulary of the topic's family
                    let family = topic_idx / FAMILY_SIZE;
                    let rank = self.topic_zipf.sample(rng);
                    out.push_str(&format!("fam{family}w{rank:02}"));
                } else {
                    // topic-specific token, e.g. "k12w07": Zipf rank within
                    // the current hot window, offset by drift + facet. The
                    // offset is NOT reduced modulo the pool — sub-story
                    // vocabulary moves forward and never cycles back.
                    let rank = self.topic_zipf.sample(rng) + offset;
                    out.push_str(&format!("k{topic_idx}w{rank:02}"));
                }
            } else {
                let rank = self.background_zipf.sample(rng);
                out.push_str(&format!("bg{rank:04}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_ranks_are_skewed_toward_head() {
        let table = ZipfTable::new(100, 1.05);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if table.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // the top 10 of 100 ranks should carry well over a third of the mass
        assert!(head as f64 / n as f64 > 0.35, "head mass {head}/{n}");
    }

    #[test]
    fn zipf_sample_always_in_range() {
        let table = ZipfTable::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(table.sample(&mut rng) < table.len());
        }
    }

    #[test]
    fn generated_text_mixes_all_token_classes() {
        let lm = LanguageModel::standard();
        let mut rng = StdRng::seed_from_u64(42);
        let text = lm.generate_text(3, 0.0, &mut rng);
        let tokens: Vec<&str> = text.split(' ').collect();
        assert!(tokens.len() >= 60 && tokens.len() <= 180);
        let topical = tokens.iter().filter(|t| t.starts_with("k3w")).count();
        let family = tokens.iter().filter(|t| t.starts_with("fam0w")).count();
        let background = tokens.iter().filter(|t| t.starts_with("bg")).count();
        let rare = tokens.iter().filter(|t| t.starts_with("rr")).count();
        assert_eq!(topical + family + background + rare, tokens.len());
        assert!(topical > 0, "no topical tokens");
        assert!(background > 0, "no background tokens");
        assert!(rare > 0, "no rare tokens");
    }

    #[test]
    fn same_family_topics_share_family_tokens() {
        // topics 0 and 1 are in family 0; topic 4 is in family 1
        let lm = LanguageModel::standard();
        let mut rng = StdRng::seed_from_u64(5);
        let a = lm.generate_text(0, 0.0, &mut rng);
        let b = lm.generate_text(4, 0.0, &mut rng);
        assert!(a.split(' ').any(|t| t.starts_with("fam0w")));
        assert!(b.split(' ').all(|t| !t.starts_with("fam0w")));
        assert!(b.split(' ').any(|t| t.starts_with("fam1w")));
    }

    #[test]
    fn drift_rotates_hot_terms_over_time() {
        // Two articles of the same topic far apart in time share fewer
        // signature terms than two contemporaneous ones.
        let lm = LanguageModel::standard().with_noise(0.0, 0.0);
        let sig_terms = |text: &str| -> std::collections::HashSet<String> {
            text.split(' ')
                .filter(|t| t.starts_with("k0w"))
                .map(|t| t.to_owned())
                .collect()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let early1 = sig_terms(&lm.generate_text(0, 0.0, &mut rng));
        let early2 = sig_terms(&lm.generate_text(0, 1.0, &mut rng));
        let late = sig_terms(&lm.generate_text(0, 170.0, &mut rng));
        let olap = |a: &std::collections::HashSet<String>,
                    b: &std::collections::HashSet<String>| {
            a.intersection(b).count() as f64 / a.len().max(1) as f64
        };
        assert!(
            olap(&early1, &early2) > olap(&early1, &late),
            "drift did not reduce long-range overlap"
        );
    }

    #[test]
    fn different_topics_use_disjoint_signature_tokens() {
        let lm = LanguageModel::standard();
        let mut rng = StdRng::seed_from_u64(9);
        let a = lm.generate_text(0, 0.0, &mut rng);
        let b = lm.generate_text(1, 0.0, &mut rng);
        assert!(a.split(' ').all(|t| !t.starts_with("k1w")));
        assert!(b.split(' ').all(|t| !t.starts_with("k0w")));
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let lm = LanguageModel::standard();
        let t1 = lm.generate_text(5, 2.0, &mut StdRng::seed_from_u64(123));
        let t2 = lm.generate_text(5, 2.0, &mut StdRng::seed_from_u64(123));
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "topic_fraction")]
    fn invalid_topic_fraction_panics() {
        LanguageModel::new(10, 10, 1.5, 10, 20);
    }
}
