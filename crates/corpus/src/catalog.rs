//! The calibrated topic catalogue.
//!
//! Named topics reproduce the inventory of the paper's Table 5 (TDT2 topic
//! ids and names) with per-window document counts and within-window placement
//! calibrated to Table 2 (window statistics) and Figures 5–9 (topic
//! histograms). Small per-window *filler topics* are added by the generator
//! to reach the per-window topic counts of Table 2.

use crate::article::TopicId;

/// Where inside a time window a topic's documents of that window fall.
///
/// Figures 5–7 of the paper hinge on this: e.g. "Unabomber" occurs in the
/// *first half* of window 1 (so a 7-day half-life has forgotten it by the
/// window's end), while "Denmark Strike" happens *late* in window 4 (so the
/// 7-day half-life spotlights it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniform over the window.
    Uniform,
    /// Concentrated in the first third.
    Early,
    /// Concentrated around the middle.
    Center,
    /// Concentrated in the last third.
    Late,
}

impl Placement {
    /// Maps a uniform sample `u ∈ [0,1)` to a fraction of the window.
    pub fn warp(self, u: f64) -> f64 {
        match self {
            Placement::Uniform => u,
            // squeeze into [0, 1/3)
            Placement::Early => u / 3.0,
            // triangular bump around the middle: [1/4, 3/4)
            Placement::Center => 0.25 + u * 0.5,
            // squeeze into [2/3, 1)
            Placement::Late => 2.0 / 3.0 + u / 3.0,
        }
    }
}

/// A named topic: identity plus its temporal document layout.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// TDT2-style topic id.
    pub id: TopicId,
    /// Human-readable topic name (from the paper's Table 5).
    pub name: &'static str,
    /// Documents per standard window (w1..w6).
    pub window_counts: [u32; 6],
    /// Within-window placement per window.
    pub placements: [Placement; 6],
}

impl TopicSpec {
    /// Total documents across all windows.
    pub fn total(&self) -> u32 {
        self.window_counts.iter().sum()
    }
}

use Placement::{Center, Early, Late, Uniform};

const U6: [Placement; 6] = [Uniform; 6];

macro_rules! topic {
    ($id:expr, $name:expr, $counts:expr) => {
        TopicSpec {
            id: TopicId($id),
            name: $name,
            window_counts: $counts,
            placements: U6,
        }
    };
    ($id:expr, $name:expr, $counts:expr, $placements:expr) => {
        TopicSpec {
            id: TopicId($id),
            name: $name,
            window_counts: $counts,
            placements: $placements,
        }
    };
}

/// The named topics, calibrated to the paper (see module docs).
pub fn named_topics() -> Vec<TopicSpec> {
    vec![
        // The heavyweights (Table 5 counts; window layout from Figures 8–9
        // and the 1998 news timeline).
        topic!(
            20015,
            "Current Conflict with Iraq",
            [300, 875, 150, 50, 70, 24]
        ),
        topic!(20001, "Asian Economic Crisis", [461, 330, 80, 50, 70, 28]),
        topic!(20002, "Monica Lewinsky Case", [280, 320, 100, 70, 100, 43]),
        topic!(
            20013,
            "1998 Winter Olympics",
            [150, 309, 30, 5, 3, 2],
            [Late, Center, Early, Uniform, Uniform, Uniform]
        ),
        topic!(
            20070,
            "India, A Nuclear Power?",
            [0, 0, 0, 30, 327, 58],
            [Uniform, Uniform, Uniform, Late, Early, Uniform]
        ),
        topic!(
            20044,
            "National Tobacco Settlement",
            [30, 40, 40, 60, 80, 57]
        ),
        topic!(
            20076,
            "Anti-Suharto Violence",
            [0, 5, 20, 50, 130, 60],
            [Uniform, Uniform, Uniform, Uniform, Center, Early]
        ),
        topic!(
            20071,
            "Israeli-Palestinian Talks (London)",
            [0, 0, 10, 50, 110, 61]
        ),
        topic!(
            20012,
            "Pope visits Cuba",
            [140, 10, 0, 0, 0, 0],
            [Center, Early, Uniform, Uniform, Uniform, Uniform]
        ),
        topic!(
            20086,
            "GM Strike",
            [0, 0, 0, 0, 10, 128],
            [Uniform, Uniform, Uniform, Uniform, Late, Uniform]
        ),
        topic!(20032, "Sgt. Gene McKinney", [40, 50, 30, 3, 2, 1]),
        topic!(20023, "Violence in Algeria", [60, 40, 10, 5, 5, 5]),
        topic!(
            20048,
            "Jonesboro shooting",
            [0, 0, 120, 3, 1, 1],
            [Uniform, Uniform, Late, Early, Uniform, Uniform]
        ),
        topic!(
            20085,
            "Saudi Soccer coach sacked",
            [0, 0, 0, 0, 8, 120],
            [Uniform, Uniform, Uniform, Uniform, Late, Center]
        ),
        topic!(
            20039,
            "India Parliamentary Elections",
            [10, 70, 35, 2, 1, 1]
        ),
        // Figure 6: burst in the first half of w1, re-emerges late in w4.
        topic!(
            20077,
            "Unabomber",
            [90, 5, 2, 15, 3, 2],
            [Early, Early, Uniform, Late, Early, Uniform]
        ),
        topic!(
            20019,
            "Cable Car Crash",
            [0, 95, 10, 3, 1, 1],
            [Uniform, Early, Uniform, Uniform, Uniform, Uniform]
        ),
        topic!(20018, "Bombing AL Clinic", [60, 30, 5, 2, 1, 1]),
        topic!(
            20047,
            "Viagra Approval",
            [0, 0, 10, 50, 41, 13],
            [Uniform, Uniform, Late, Center, Uniform, Uniform]
        ),
        topic!(
            20033,
            "Superbowl '98",
            [76, 0, 0, 0, 0, 0],
            [Late, Uniform, Uniform, Uniform, Uniform, Uniform]
        ),
        topic!(
            20087,
            "NBA finals",
            [0, 0, 0, 2, 40, 47],
            [Uniform, Uniform, Uniform, Uniform, Late, Center]
        ),
        topic!(20026, "Oprah Lawsuit", [30, 35, 3, 1, 1, 0]),
        topic!(
            20096,
            "Clinton-Jiang Debate",
            [0, 0, 0, 0, 5, 59],
            [Uniform, Uniform, Uniform, Uniform, Late, Late]
        ),
        topic!(
            20065,
            "Rats in Space!",
            [0, 0, 5, 45, 8, 2],
            [Uniform, Uniform, Late, Center, Early, Uniform]
        ),
        topic!(
            20021,
            "Tornado in Florida",
            [0, 48, 3, 1, 1, 0],
            [Uniform, Late, Early, Uniform, Uniform, Uniform]
        ),
        // Figure 5: scattered, slightly denser in w4 and w6; late in w4
        // (detected by β=7 there), early in w6 (missed by β=7 there).
        topic!(
            20074,
            "Nigerian Protest Violence",
            [5, 5, 5, 18, 5, 15],
            [Uniform, Uniform, Uniform, Late, Uniform, Early]
        ),
        topic!(20005, "Upcoming Philippine Elections", [2, 5, 8, 15, 8, 0]),
        topic!(20031, "John Glenn", [30, 4, 1, 1, 0, 0]),
        topic!(
            20020,
            "China Airlines Crash",
            [0, 25, 5, 1, 1, 0],
            [Uniform, Center, Early, Uniform, Uniform, Uniform]
        ),
        topic!(20022, "Diane Zamora", [5, 10, 8, 4, 2, 1]),
        topic!(
            20042,
            "Asteroid Coming??",
            [0, 0, 25, 3, 1, 0],
            [Uniform, Uniform, Early, Uniform, Uniform, Uniform]
        ),
        topic!(20041, "Grossberg baby murder", [5, 8, 8, 3, 1, 1]),
        topic!(
            20004,
            "McVeigh's Navy Dismissal & Fight",
            [10, 5, 2, 1, 1, 0]
        ),
        topic!(
            20011,
            "State of the Union Address",
            [18, 0, 0, 0, 0, 0],
            [Late, Uniform, Uniform, Uniform, Uniform, Uniform]
        ),
        topic!(20017, "Babbitt Casino Case", [8, 5, 2, 1, 1, 0]),
        topic!(
            20083,
            "World AIDS Conference",
            [0, 0, 0, 0, 2, 15],
            [Uniform, Uniform, Uniform, Uniform, Late, Late]
        ),
        topic!(20063, "Bird Watchers Hostage", [2, 3, 4, 4, 2, 1]),
        // Figure 7: late w4 + early w5, small but sharply bursty.
        topic!(
            20078,
            "Denmark Strike",
            [0, 0, 0, 8, 7, 0],
            [Uniform, Uniform, Uniform, Late, Early, Uniform]
        ),
        topic!(
            20043,
            "Dr. Spock Dies",
            [0, 0, 13, 1, 1, 0],
            [Uniform, Uniform, Center, Uniform, Uniform, Uniform]
        ),
        topic!(20064, "Race Relations Meetings", [2, 2, 2, 2, 2, 1]),
        topic!(20098, "Cubans returned home", [0, 0, 0, 2, 3, 4]),
        topic!(
            20079,
            "Akin Birdal Shot & Wounded",
            [0, 0, 0, 0, 6, 2],
            [Uniform, Uniform, Uniform, Uniform, Early, Uniform]
        ),
        topic!(20099, "Oregon bomb for Clinton?", [0, 0, 0, 0, 2, 6]),
        topic!(20100, "Goldman Sachs - going public?", [0, 0, 0, 0, 2, 6]),
        topic!(20075, "Food Stamps", [1, 1, 1, 2, 1, 1]),
        topic!(20036, "Rev. Lyons Arrested", [1, 2, 1, 1, 0, 0]),
        topic!(20046, "Great Lake Champlain??", [0, 2, 2, 1, 0, 0]),
        topic!(
            20088,
            "Anti-Chinese Violence in Indonesia",
            [0, 0, 0, 1, 3, 1]
        ),
        topic!(20082, "Abortion clinic acid attacks", [0, 0, 1, 1, 1, 1]),
        topic!(20040, "Tello (Maryland) Murder", [2, 2, 1, 1, 0, 0]),
        topic!(
            20014,
            "African Leaders and World Bank Pres.",
            [1, 1, 0, 0, 0, 0]
        ),
        topic!(20030, "Pension for Mrs. Schindler", [1, 1, 0, 0, 0, 0]),
        topic!(20062, "Mandela visits Angola", [0, 0, 1, 1, 0, 0]),
        topic!(20097, "Martin Fogel's law degree", [0, 0, 0, 1, 1, 0]),
    ]
}

/// Per-window targets from the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct WindowTargets {
    /// Total documents per window.
    pub docs: [u32; 6],
    /// Distinct topics per window.
    pub topics: [u32; 6],
}

/// The paper's Table 2 targets.
pub const TABLE2_TARGETS: WindowTargets = WindowTargets {
    docs: [1820, 2393, 823, 570, 1090, 882],
    topics: [30, 44, 47, 39, 40, 43],
};

/// The full topic catalogue: named topics + window targets.
#[derive(Debug, Clone)]
pub struct TopicCatalog {
    /// The named (paper Table 5) topics.
    pub named: Vec<TopicSpec>,
    /// Per-window calibration targets (paper Table 2).
    pub targets: WindowTargets,
}

impl Default for TopicCatalog {
    fn default() -> Self {
        Self {
            named: named_topics(),
            targets: TABLE2_TARGETS,
        }
    }
}

impl TopicCatalog {
    /// Documents contributed by named topics in window `w`.
    pub fn named_docs_in_window(&self, w: usize) -> u32 {
        self.named.iter().map(|t| t.window_counts[w]).sum()
    }

    /// Named topics active (≥ 1 doc) in window `w`.
    pub fn named_topics_in_window(&self, w: usize) -> u32 {
        self.named.iter().filter(|t| t.window_counts[w] > 0).count() as u32
    }

    /// Looks up a named topic by id.
    pub fn get(&self, id: TopicId) -> Option<&TopicSpec> {
        self.named.iter().find(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_topic_ids_are_unique() {
        let cat = TopicCatalog::default();
        let mut ids: Vec<u32> = cat.named.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.named.len());
    }

    #[test]
    fn named_docs_do_not_exceed_window_targets_by_much() {
        let cat = TopicCatalog::default();
        for w in 0..6 {
            let named = cat.named_docs_in_window(w);
            let target = cat.targets.docs[w];
            assert!(
                named <= target,
                "window {w}: named {named} exceeds target {target}"
            );
        }
    }

    #[test]
    fn named_topic_counts_leave_room_for_filler() {
        let cat = TopicCatalog::default();
        for w in 0..6 {
            let named = cat.named_topics_in_window(w);
            // Allow the named inventory to slightly exceed Table 2's topic
            // count (w4 has more named topics than the target).
            assert!(
                named <= cat.targets.topics[w] + 5,
                "window {w}: {named} named topics vs target {}",
                cat.targets.topics[w]
            );
        }
    }

    #[test]
    fn famous_totals_are_close_to_table5() {
        let cat = TopicCatalog::default();
        let check = |id: u32, expected: u32, tol: u32| {
            let t = cat.get(TopicId(id)).unwrap();
            let total = t.total();
            assert!(
                total.abs_diff(expected) <= tol,
                "topic {id} ({}) total {total} vs Table 5 {expected}",
                t.name
            );
        };
        check(20015, 1439, 80); // Iraq
        check(20001, 1034, 80); // Asian Economic Crisis
        check(20002, 923, 80); // Lewinsky
        check(20013, 530, 40); // Olympics
        check(20070, 415, 20); // India nuclear
        check(20078, 15, 2); // Denmark Strike
        check(20074, 50, 5); // Nigerian Protest Violence
        check(20077, 117, 10); // Unabomber
    }

    #[test]
    fn placement_warp_stays_in_unit_interval_and_respects_region() {
        for u in [0.0, 0.25, 0.5, 0.75, 0.999] {
            assert!((0.0..1.0).contains(&Placement::Uniform.warp(u)));
            let e = Placement::Early.warp(u);
            assert!((0.0..1.0 / 3.0).contains(&e), "early {e}");
            let l = Placement::Late.warp(u);
            assert!((2.0 / 3.0..1.0).contains(&l), "late {l}");
            let c = Placement::Center.warp(u);
            assert!((0.25..0.75).contains(&c), "center {c}");
        }
    }

    #[test]
    fn table2_targets_sum_to_paper_total() {
        let total: u32 = TABLE2_TARGETS.docs.iter().sum();
        assert_eq!(total, 7578);
    }

    #[test]
    fn denmark_strike_is_late_w4_early_w5() {
        let cat = TopicCatalog::default();
        let t = cat.get(TopicId(20078)).unwrap();
        assert_eq!(t.placements[3], Placement::Late);
        assert_eq!(t.placements[4], Placement::Early);
        assert_eq!(t.window_counts[0], 0);
        assert_eq!(t.window_counts[5], 0);
    }
}
