//! The corpus container: chronological articles + topic inventory.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use serde::{Deserialize, Serialize};

use crate::article::{Article, TopicId};
use crate::windows::{TimeWindow, WindowStats};
use crate::{STANDARD_WINDOW_BOUNDS, STANDARD_WINDOW_LABELS};

/// A topic's identity in the corpus inventory (one row of the paper's
/// Table 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicInfo {
    /// Topic id.
    pub id: TopicId,
    /// Topic name.
    pub name: String,
    /// Total documents with this label.
    pub count: usize,
}

/// A chronological labelled article stream.
///
/// Invariant: `articles` is sorted by `day`, and article ids equal their
/// position (dense arrival-order ids).
#[derive(Debug, Clone)]
pub struct Corpus {
    articles: Vec<Article>,
    topics: Vec<TopicInfo>,
}

impl Corpus {
    /// Builds a corpus from parts, sorting by day and reassigning dense ids.
    pub fn from_parts(mut articles: Vec<Article>, mut topics: Vec<TopicInfo>) -> Self {
        articles.sort_by(|a, b| a.day.partial_cmp(&b.day).expect("finite days"));
        for (i, a) in articles.iter_mut().enumerate() {
            a.id = i as u64;
        }
        // recount topics from the articles to keep the inventory honest
        let mut counts: BTreeMap<TopicId, usize> = BTreeMap::new();
        for a in &articles {
            *counts.entry(a.topic).or_insert(0) += 1;
        }
        for t in &mut topics {
            t.count = counts.get(&t.id).copied().unwrap_or(0);
        }
        topics.sort_by_key(|t| t.id);
        Self { articles, topics }
    }

    /// The articles in chronological order.
    pub fn articles(&self) -> &[Article] {
        &self.articles
    }

    /// Number of articles.
    pub fn len(&self) -> usize {
        self.articles.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.articles.is_empty()
    }

    /// The topic inventory, sorted by id.
    pub fn topics(&self) -> &[TopicInfo] {
        &self.topics
    }

    /// Name of topic `id`, if known.
    pub fn topic_name(&self, id: TopicId) -> Option<&str> {
        self.topics
            .binary_search_by_key(&id, |t| t.id)
            .ok()
            .map(|i| self.topics[i].name.as_str())
    }

    /// Splits the stream into windows at the given `(start, end)` day bounds.
    /// An article belongs to window `w` iff `start ≤ day < end`.
    pub fn windows(&self, bounds: &[(f64, f64)], labels: &[&str]) -> Vec<TimeWindow> {
        bounds
            .iter()
            .enumerate()
            .map(|(index, &(start, end))| {
                let article_indices = self
                    .articles
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.day >= start && a.day < end)
                    .map(|(i, _)| i)
                    .collect();
                TimeWindow {
                    index,
                    label: labels.get(index).copied().unwrap_or("window").to_owned(),
                    start,
                    end,
                    article_indices,
                }
            })
            .collect()
    }

    /// The paper's six standard windows (§6.2.1).
    pub fn standard_windows(&self) -> Vec<TimeWindow> {
        self.windows(&STANDARD_WINDOW_BOUNDS, &STANDARD_WINDOW_LABELS)
    }

    /// Statistics of one window (one column of Table 2).
    pub fn window_stats(&self, window: &TimeWindow) -> WindowStats {
        WindowStats::compute(window, &self.articles)
    }

    /// Histogram of a topic's documents over time with `bin_days`-wide bins
    /// (the Figures 5–9 series). Returns `(bin_start_day, count)` for every
    /// bin from day 0 through the last article, including empty bins.
    pub fn topic_histogram(&self, topic: TopicId, bin_days: f64) -> Vec<(f64, usize)> {
        assert!(bin_days > 0.0);
        let horizon = self.articles.last().map_or(0.0, |a| a.day);
        let nbins = (horizon / bin_days).floor() as usize + 1;
        let mut bins = vec![0usize; nbins];
        for a in &self.articles {
            if a.topic == topic {
                let b = (a.day / bin_days).floor() as usize;
                bins[b.min(nbins - 1)] += 1;
            }
        }
        bins.into_iter()
            .enumerate()
            .map(|(i, c)| (i as f64 * bin_days, c))
            .collect()
    }

    /// Serialises the corpus as JSON lines: one header line with the topic
    /// inventory, then one line per article.
    pub fn save_jsonl<W: Write>(&self, writer: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(writer);
        serde_json::to_writer(&mut w, &self.topics)?;
        w.write_all(b"\n")?;
        for a in &self.articles {
            serde_json::to_writer(&mut w, a)?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Loads a corpus previously written by [`Corpus::save_jsonl`].
    pub fn load_jsonl<R: Read>(reader: R) -> std::io::Result<Self> {
        let mut lines = BufReader::new(reader).lines();
        let header = lines.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "empty file")
        })??;
        let topics: Vec<TopicInfo> = serde_json::from_str(&header)?;
        let mut articles = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            articles.push(serde_json::from_str::<Article>(&line)?);
        }
        Ok(Self::from_parts(articles, topics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(topic: u32, day: f64) -> Article {
        Article {
            id: 0,
            topic: TopicId(topic),
            day,
            text: format!("doc about {topic}"),
        }
    }

    fn sample() -> Corpus {
        Corpus::from_parts(
            vec![art(2, 35.0), art(1, 1.0), art(1, 5.0), art(2, 160.0)],
            vec![
                TopicInfo {
                    id: TopicId(1),
                    name: "One".into(),
                    count: 0,
                },
                TopicInfo {
                    id: TopicId(2),
                    name: "Two".into(),
                    count: 0,
                },
            ],
        )
    }

    #[test]
    fn from_parts_sorts_and_reassigns_ids() {
        let c = sample();
        let days: Vec<f64> = c.articles().iter().map(|a| a.day).collect();
        assert_eq!(days, vec![1.0, 5.0, 35.0, 160.0]);
        let ids: Vec<u64> = c.articles().iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topic_counts_are_recomputed() {
        let c = sample();
        assert_eq!(c.topics()[0].count, 2);
        assert_eq!(c.topics()[1].count, 2);
        assert_eq!(c.topic_name(TopicId(2)), Some("Two"));
        assert_eq!(c.topic_name(TopicId(9)), None);
    }

    #[test]
    fn standard_windows_partition_articles() {
        let c = sample();
        let ws = c.standard_windows();
        assert_eq!(ws.len(), 6);
        assert_eq!(ws[0].len(), 2); // days 1, 5
        assert_eq!(ws[1].len(), 1); // day 35
        assert_eq!(ws[5].len(), 1); // day 160
        let total: usize = ws.iter().map(|w| w.len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn window_stats_per_window() {
        let c = sample();
        let ws = c.standard_windows();
        let s = c.window_stats(&ws[0]);
        assert_eq!(s.num_docs, 2);
        assert_eq!(s.num_topics, 1);
        assert_eq!(s.max_topic_size, 2);
    }

    #[test]
    fn topic_histogram_counts_and_bins() {
        let c = sample();
        let h = c.topic_histogram(TopicId(1), 10.0);
        // articles at days 1 and 5 → both in bin [0,10)
        assert_eq!(h[0], (0.0, 2));
        assert!(h.iter().skip(1).all(|&(_, n)| n == 0 || n == 1));
        let total: usize = h.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn jsonl_roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        c.save_jsonl(&mut buf).unwrap();
        let back = Corpus::load_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.topics().len(), c.topics().len());
        assert_eq!(back.articles()[2].topic, c.articles()[2].topic);
        assert_eq!(back.articles()[1].text, c.articles()[1].text);
    }

    #[test]
    fn load_rejects_empty_input() {
        assert!(Corpus::load_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn load_rejects_malformed_header() {
        assert!(Corpus::load_jsonl(&b"not json\n"[..]).is_err());
        // header must be the topic inventory (an array), not an article
        let bad = br#"{"id":0,"topic":1,"day":0.0,"text":"x"}"#;
        assert!(Corpus::load_jsonl(&bad[..]).is_err());
    }

    #[test]
    fn load_rejects_malformed_article_line() {
        let input = b"[]\n{\"id\":0,\"topic\":1}\n"; // article missing fields
        assert!(Corpus::load_jsonl(&input[..]).is_err());
    }

    #[test]
    fn load_skips_blank_lines() {
        let mut buf = Vec::new();
        sample().save_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = Corpus::load_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn load_tolerates_missing_topics_in_inventory() {
        // articles referencing topics absent from the header still load;
        // from_parts recounts and the unknown topic has no name
        let input = br#"[{"id":1,"name":"One","count":0}]
{"id":0,"topic":1,"day":0.0,"text":"a"}
{"id":1,"topic":9,"day":1.0,"text":"b"}
"#;
        let c = Corpus::load_jsonl(&input[..]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.topic_name(TopicId(9)), None);
        assert_eq!(c.topic_name(TopicId(1)), Some("One"));
    }
}
