//! The F²ICM clustering method: seed election + similarity-based
//! classification, with incremental seed hysteresis.

use std::collections::BTreeSet;

use nidc_forgetting::Repository;
use nidc_similarity::DocVectors;
use nidc_textproc::DocId;

use crate::cover::{decoupling, CoverStats};
use crate::{Error, Result};

/// Configuration for [`F2icm`].
#[derive(Debug, Clone)]
pub struct F2icmConfig {
    /// Number of seeds/clusters. `None` uses the cover-coefficient estimate
    /// `n_c = Σ δ_i` (clamped to `max_clusters`).
    pub k: Option<usize>,
    /// Upper bound on the cluster count when `k` is `None`.
    pub max_clusters: usize,
    /// Seed hysteresis `h ≥ 1`: an incumbent seed keeps its slot unless a
    /// challenger's seed power exceeds `h ×` the incumbent's. `1.0` disables
    /// hysteresis (pure re-election each round).
    pub hysteresis: f64,
}

impl Default for F2icmConfig {
    fn default() -> Self {
        Self {
            k: None,
            max_clusters: 64,
            hysteresis: 1.25,
        }
    }
}

/// One F²ICM cluster: a seed document and its members (the seed included).
#[derive(Debug, Clone)]
pub struct SeededCluster {
    /// The seed document.
    pub seed: DocId,
    /// All members, seed first, others in ascending id order.
    pub members: Vec<DocId>,
}

/// The outcome of one F²ICM clustering round.
#[derive(Debug, Clone)]
pub struct F2icmClustering {
    clusters: Vec<SeededCluster>,
    ragbag: Vec<DocId>,
    n_c_estimate: f64,
}

impl F2icmClustering {
    /// The seeded clusters.
    pub fn clusters(&self) -> &[SeededCluster] {
        &self.clusters
    }

    /// Documents similar to no seed (C²ICM's ragbag).
    pub fn ragbag(&self) -> &[DocId] {
        &self.ragbag
    }

    /// The cover-coefficient estimate `n_c = Σ δ_i` at clustering time.
    pub fn n_c_estimate(&self) -> f64 {
        self.n_c_estimate
    }

    /// Member lists (for the evaluation machinery).
    pub fn member_lists(&self) -> Vec<Vec<DocId>> {
        self.clusters.iter().map(|c| c.members.clone()).collect()
    }
}

/// The stateful F²ICM clusterer. Keep one instance alive across rounds so
/// seed hysteresis can stabilise the clustering between updates.
#[derive(Debug, Clone, Default)]
pub struct F2icm {
    config: F2icmConfig,
    incumbent_seeds: Vec<DocId>,
}

impl F2icm {
    /// Creates a clusterer.
    pub fn new(config: F2icmConfig) -> Self {
        Self {
            config,
            incumbent_seeds: Vec::new(),
        }
    }

    /// The current seed set (empty before the first round).
    pub fn seeds(&self) -> &[DocId] {
        &self.incumbent_seeds
    }

    /// Runs one clustering round over the repository's current state.
    ///
    /// # Errors
    /// [`Error::EmptyRepository`] when there is nothing to cluster;
    /// [`Error::InvalidConfig`] for nonsensical configuration.
    pub fn cluster(&mut self, repo: &Repository) -> Result<F2icmClustering> {
        if repo.is_empty() {
            return Err(Error::EmptyRepository);
        }
        if self.config.hysteresis < 1.0 {
            return Err(Error::InvalidConfig("hysteresis must be ≥ 1.0"));
        }
        if self.config.max_clusters == 0 {
            return Err(Error::InvalidConfig("max_clusters must be ≥ 1"));
        }

        // 1–2. cover statistics and the cluster-count estimate
        let stats = decoupling(repo);
        let n_c_estimate: f64 = stats.values().map(|s| s.decoupling).sum();
        let k = match self.config.k {
            Some(0) => return Err(Error::InvalidConfig("k must be ≥ 1")),
            Some(k) => k,
            None => (n_c_estimate.round() as usize).clamp(1, self.config.max_clusters),
        }
        .min(repo.len());

        // 3. seed election with hysteresis
        let power = |id: DocId| stats.get(&id).map_or(0.0, |s: &CoverStats| s.seed_power);
        let mut candidates: Vec<DocId> = stats.keys().copied().collect();
        candidates.sort_by(|&a, &b| {
            power(b)
                .partial_cmp(&power(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut seeds: Vec<DocId> = Vec::with_capacity(k);
        // incumbents first: an incumbent stays while it is still alive and
        // no challenger beats it by the hysteresis factor
        let threshold_rank = candidates.get(k.saturating_sub(1)).copied();
        let challenger_power = threshold_rank.map_or(0.0, power);
        for &s in &self.incumbent_seeds {
            if seeds.len() >= k {
                break;
            }
            if stats.contains_key(&s) && power(s) * self.config.hysteresis >= challenger_power {
                seeds.push(s);
            }
        }
        for &c in &candidates {
            if seeds.len() >= k {
                break;
            }
            if !seeds.contains(&c) {
                seeds.push(c);
            }
        }
        seeds.sort_unstable();
        self.incumbent_seeds = seeds.clone();

        // 4. classification against the seeds under the novelty similarity
        let vecs = DocVectors::build(repo);
        let seed_set: BTreeSet<DocId> = seeds.iter().copied().collect();
        let mut clusters: Vec<SeededCluster> = seeds
            .iter()
            .map(|&seed| SeededCluster {
                seed,
                members: vec![seed],
            })
            .collect();
        let mut ragbag = Vec::new();
        for id in vecs.ids() {
            if seed_set.contains(&id) {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (ci, &seed) in seeds.iter().enumerate() {
                let s = vecs.sim(id, seed).unwrap_or(0.0);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((ci, s));
                }
            }
            match best {
                Some((ci, s)) if s > 0.0 => clusters[ci].members.push(id),
                _ => ragbag.push(id),
            }
        }
        Ok(F2icmClustering {
            clusters,
            ragbag,
            n_c_estimate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_forgetting::{DecayParams, Timestamp};
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    fn two_topic_repo() -> Repository {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 300.0).unwrap());
        for i in 0..4u64 {
            repo.insert(
                DocId(i),
                Timestamp(0.01 * i as f64),
                tf(&[(0, 3.0), (1, 2.0), (10 + i as u32, 1.0)]),
            )
            .unwrap();
        }
        for i in 4..8u64 {
            repo.insert(
                DocId(i),
                Timestamp(0.01 * i as f64),
                tf(&[(5, 3.0), (6, 2.0), (20 + i as u32, 1.0)]),
            )
            .unwrap();
        }
        repo
    }

    #[test]
    fn clusters_two_topics_with_estimated_k() {
        let repo = two_topic_repo();
        let mut f = F2icm::new(F2icmConfig::default());
        let c = f.cluster(&repo).unwrap();
        assert!(c.n_c_estimate() > 1.0 && c.n_c_estimate() < 5.0);
        // every cluster must be topic-pure
        for cl in c.clusters() {
            let a_side = cl.members.iter().filter(|d| d.0 < 4).count();
            assert!(
                a_side == 0 || a_side == cl.members.len(),
                "mixed cluster {:?}",
                cl.members
            );
        }
        // all docs accounted for
        let total: usize = c
            .clusters()
            .iter()
            .map(|cl| cl.members.len())
            .sum::<usize>()
            + c.ragbag().len();
        assert_eq!(total, 8);
    }

    #[test]
    fn explicit_k_is_respected() {
        let repo = two_topic_repo();
        let mut f = F2icm::new(F2icmConfig {
            k: Some(2),
            ..F2icmConfig::default()
        });
        let c = f.cluster(&repo).unwrap();
        assert_eq!(c.clusters().len(), 2);
        let sides: Vec<usize> = c
            .clusters()
            .iter()
            .map(|cl| cl.members.iter().filter(|d| d.0 < 4).count())
            .collect();
        // one cluster all topic A, the other all topic B
        assert!(sides.contains(&0) || sides.contains(&4));
    }

    #[test]
    fn seeds_are_stable_under_hysteresis() {
        let mut repo = two_topic_repo();
        let mut f = F2icm::new(F2icmConfig {
            k: Some(2),
            hysteresis: 2.0,
            ..F2icmConfig::default()
        });
        f.cluster(&repo).unwrap();
        let seeds_before = f.seeds().to_vec();
        // a small perturbation: one more doc per topic, slightly later
        repo.insert(DocId(100), Timestamp(1.0), tf(&[(0, 2.0), (1, 2.0)]))
            .unwrap();
        repo.insert(DocId(101), Timestamp(1.0), tf(&[(5, 2.0), (6, 2.0)]))
            .unwrap();
        f.cluster(&repo).unwrap();
        let kept = f
            .seeds()
            .iter()
            .filter(|s| seeds_before.contains(s))
            .count();
        assert!(
            kept >= 1,
            "hysteresis should keep incumbent seeds: before {seeds_before:?}, after {:?}",
            f.seeds()
        );
    }

    #[test]
    fn unrelated_document_lands_in_ragbag() {
        let mut repo = two_topic_repo();
        repo.insert(DocId(99), Timestamp(1.0), tf(&[(50, 1.0)]))
            .unwrap();
        let mut f = F2icm::new(F2icmConfig {
            k: Some(2),
            ..F2icmConfig::default()
        });
        let c = f.cluster(&repo).unwrap();
        assert!(
            c.ragbag().contains(&DocId(99)) || c.clusters().iter().any(|cl| cl.seed == DocId(99)),
            "stray doc must be ragbag (or a seed): ragbag {:?}",
            c.ragbag()
        );
    }

    #[test]
    fn error_paths() {
        let repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
        let mut f = F2icm::new(F2icmConfig::default());
        assert!(matches!(f.cluster(&repo), Err(Error::EmptyRepository)));

        let repo = two_topic_repo();
        let mut f = F2icm::new(F2icmConfig {
            hysteresis: 0.5,
            ..F2icmConfig::default()
        });
        assert!(matches!(f.cluster(&repo), Err(Error::InvalidConfig(_))));
        let mut f = F2icm::new(F2icmConfig {
            k: Some(0),
            ..F2icmConfig::default()
        });
        assert!(matches!(f.cluster(&repo), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn recent_seed_preference() {
        // two identical-content groups, one old, one new: seeds should come
        // from the new group when k = 1 forces a choice
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 300.0).unwrap());
        for i in 0..3u64 {
            repo.insert(DocId(i), Timestamp(0.0), tf(&[(0, 2.0), (1, 1.0)]))
                .unwrap();
        }
        for i in 3..6u64 {
            repo.insert(DocId(i), Timestamp(20.0), tf(&[(0, 2.0), (1, 1.0)]))
                .unwrap();
        }
        let mut f = F2icm::new(F2icmConfig {
            k: Some(1),
            ..F2icmConfig::default()
        });
        let c = f.cluster(&repo).unwrap();
        assert!(
            c.clusters()[0].seed.0 >= 3,
            "seed should be a recent doc, got {}",
            c.clusters()[0].seed
        );
    }
}
