//! F²ICM — the *Forgetting-Factor-based Incremental Clustering Method*
//! (Ishikawa, Chen & Kitagawa, ECDL 2001), the predecessor of the ICDE 2006
//! extended-K-means method reproduced in `nidc-core` (the 2006 paper: "the
//! difference between this paper and F²ICM is … mainly in the clustering
//! criteria and algorithm"; both share the similarity formulas and the
//! incremental statistics update, which live in `nidc-forgetting` /
//! `nidc-similarity`).
//!
//! F²ICM derives its clustering skeleton from Can's **C²ICM**
//! (cover-coefficient-based incremental clustering, ACM TOIS 1993):
//!
//! 1. From the (here: forgetting-weighted) document–term matrix compute each
//!    document's **decoupling coefficient** `δ_i` — the share of its cover
//!    that falls on itself — and coupling `ψ_i = 1 − δ_i`
//!    ([`cover::decoupling`]).
//! 2. The **number of clusters** is estimated as `n_c = Σ_i δ_i`
//!    ([`cover::estimate_num_clusters`]) — incidentally answering the 2006
//!    paper's future-work question of how to choose K.
//! 3. The `n_c` documents with the highest **seed power**
//!    `p_i = δ_i·ψ_i·w_i` (weighted by the forgetting model, so *recent
//!    documents make stronger seeds*) become cluster seeds.
//! 4. Every other document joins the seed with the highest novelty-based
//!    similarity; documents similar to no seed fall into the *ragbag*.
//! 5. Incrementally, seeds are re-elected under the updated statistics with
//!    hysteresis (an incumbent seed keeps its slot unless a challenger
//!    out-powers it by a margin), and documents are re-assigned against the
//!    mostly-stable seed set.
//!
//! ```
//! use nidc_f2icm::{F2icm, F2icmConfig};
//! use nidc_forgetting::{DecayParams, Repository, Timestamp};
//! use nidc_textproc::{DocId, SparseVector, TermId};
//!
//! let mut repo = Repository::new(DecayParams::from_spans(7.0, 30.0).unwrap());
//! let tf = |p: &[(u32, f64)]| SparseVector::from_entries(
//!     p.iter().map(|&(i, w)| (TermId(i), w)).collect());
//! repo.insert(DocId(0), Timestamp(0.0), tf(&[(0, 2.0), (1, 1.0)])).unwrap();
//! repo.insert(DocId(1), Timestamp(0.1), tf(&[(0, 1.0), (1, 2.0)])).unwrap();
//! repo.insert(DocId(2), Timestamp(0.2), tf(&[(5, 2.0), (6, 1.0)])).unwrap();
//! repo.insert(DocId(3), Timestamp(0.3), tf(&[(5, 1.0), (6, 2.0)])).unwrap();
//!
//! let mut f2icm = F2icm::new(F2icmConfig::default());
//! let clustering = f2icm.cluster(&repo).unwrap();
//! assert!(clustering.clusters().len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
mod method;

pub use method::{F2icm, F2icmClustering, F2icmConfig, SeededCluster};

/// Errors raised by F²ICM.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The repository holds no documents.
    EmptyRepository,
    /// A configuration field was out of range.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyRepository => write!(f, "repository holds no documents"),
            Error::InvalidConfig(what) => write!(f, "invalid F2ICM configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Error>;
