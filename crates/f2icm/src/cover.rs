//! Cover-coefficient machinery (Can 1993) over the forgetting-weighted
//! document–term matrix.
//!
//! Let `g_ik = Pr(d_i)·f_ik/len_i` — document `d_i`'s weighted term
//! distribution (the entries of eq. 20's summand before idf). With column
//! masses `m_k = Σ_i g_ik`, the **cover coefficient**
//!
//! ```text
//! c_ij = (1/Σ_k g_ik) · Σ_k g_ik · g_jk / m_k
//! ```
//!
//! is the probability of a two-stage random walk from `d_i` through a term
//! to `d_j` — exactly the paper's eq. 5/6 structure. The rows of `C` are
//! stochastic (`Σ_j c_ij = 1`), so the diagonal `δ_i = c_ii` — the
//! **decoupling coefficient** — measures how much of `d_i`'s identity is
//! its own, and `Σ_i δ_i` estimates how many clusters the collection
//! naturally supports.

use std::collections::BTreeMap;

use nidc_forgetting::Repository;
use nidc_textproc::DocId;

/// Per-document cover diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverStats {
    /// Decoupling coefficient `δ ∈ (0, 1]`.
    pub decoupling: f64,
    /// Coupling coefficient `ψ = 1 − δ`.
    pub coupling: f64,
    /// Seed power `p = δ·ψ·w` where `w` is the document's current
    /// forgetting-model weight (recent documents make stronger seeds).
    pub seed_power: f64,
}

/// Computes `δ_i`, `ψ_i` and seed power for every live document.
///
/// Cost: two passes over all postings — O(total tokens).
pub fn decoupling(repo: &Repository) -> BTreeMap<DocId, CoverStats> {
    // column masses m_k = Σ_i g_ik, over the weighted distributions
    let mut col_mass: Vec<f64> = vec![0.0; repo.vocab_dim()];
    let mut row_mass: BTreeMap<DocId, f64> = BTreeMap::new();
    for (id, entry) in repo.iter() {
        let pr = repo.pr_doc(id).expect("live doc");
        let scale = pr / entry.len();
        let mut row = 0.0;
        for (t, f) in entry.tf().iter() {
            let g = scale * f;
            col_mass[t.index()] += g;
            row += g;
        }
        row_mass.insert(id, row);
    }
    // δ_i = (1/row_i) Σ_k g_ik² / m_k
    let mut out = BTreeMap::new();
    for (id, entry) in repo.iter() {
        let pr = repo.pr_doc(id).expect("live doc");
        let scale = pr / entry.len();
        let row = row_mass[&id];
        if row <= 0.0 {
            continue;
        }
        let mut self_cover = 0.0;
        for (t, f) in entry.tf().iter() {
            let g = scale * f;
            let m = col_mass[t.index()];
            if m > 0.0 {
                self_cover += g * g / m;
            }
        }
        let delta = (self_cover / row).clamp(0.0, 1.0);
        let psi = 1.0 - delta;
        out.insert(
            id,
            CoverStats {
                decoupling: delta,
                coupling: psi,
                seed_power: delta * psi * entry.weight(),
            },
        );
    }
    out
}

/// C²ICM's estimate of the natural number of clusters: `n_c = Σ_i δ_i`.
///
/// This doubles as a data-driven choice of K for `nidc-core`'s extended
/// K-means (the ICDE 2006 paper lists "a method to estimate the appropriate
/// K value" as future work).
pub fn estimate_num_clusters(repo: &Repository) -> f64 {
    decoupling(repo).values().map(|s| s.decoupling).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nidc_forgetting::{DecayParams, Timestamp};
    use nidc_textproc::{SparseVector, TermId};

    fn tf(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    type DocSpec<'a> = (u64, f64, &'a [(u32, f64)]);

    fn repo_with(docs: &[DocSpec]) -> Repository {
        let mut repo = Repository::new(DecayParams::from_spans(7.0, 300.0).unwrap());
        for &(id, day, pairs) in docs {
            repo.insert(DocId(id), Timestamp(day), tf(pairs)).unwrap();
        }
        repo
    }

    #[test]
    fn identical_documents_are_fully_coupled() {
        let repo = repo_with(&[(0, 0.0, &[(0, 1.0)]), (1, 0.0, &[(0, 1.0)])]);
        let stats = decoupling(&repo);
        // each of two identical docs covers itself exactly half
        for s in stats.values() {
            assert!((s.decoupling - 0.5).abs() < 1e-12);
            assert!((s.coupling - 0.5).abs() < 1e-12);
        }
        assert!((estimate_num_clusters(&repo) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_documents_are_fully_decoupled() {
        let repo = repo_with(&[
            (0, 0.0, &[(0, 2.0)]),
            (1, 0.0, &[(5, 3.0)]),
            (2, 0.0, &[(9, 1.0)]),
        ]);
        let stats = decoupling(&repo);
        for s in stats.values() {
            assert!((s.decoupling - 1.0).abs() < 1e-12);
            assert!(
                s.seed_power.abs() < 1e-12,
                "fully decoupled ⇒ ψ = 0 ⇒ p = 0"
            );
        }
        assert!((estimate_num_clusters(&repo) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_count_estimate_tracks_structure() {
        // two tight pairs in disjoint subspaces → n_c ≈ 2
        let repo = repo_with(&[
            (0, 0.0, &[(0, 1.0), (1, 1.0)]),
            (1, 0.0, &[(0, 1.0), (1, 1.0)]),
            (2, 0.0, &[(7, 1.0), (8, 1.0)]),
            (3, 0.0, &[(7, 1.0), (8, 1.0)]),
        ]);
        let n_c = estimate_num_clusters(&repo);
        assert!((n_c - 2.0).abs() < 1e-9, "n_c = {n_c}");
    }

    #[test]
    fn recent_documents_have_stronger_seed_power() {
        // same content, different ages, in a mixed collection
        let repo = repo_with(&[
            (0, 0.0, &[(0, 1.0), (1, 1.0)]),
            (1, 20.0, &[(0, 1.0), (1, 1.0)]),
            (2, 20.0, &[(1, 1.0), (2, 1.0)]),
        ]);
        let stats = decoupling(&repo);
        assert!(
            stats[&DocId(1)].seed_power > stats[&DocId(0)].seed_power,
            "newer doc must out-power its older twin: {:?} vs {:?}",
            stats[&DocId(1)],
            stats[&DocId(0)]
        );
    }

    #[test]
    fn delta_bounds_and_nc_bounds() {
        let repo = repo_with(&[
            (0, 0.0, &[(0, 3.0), (1, 1.0)]),
            (1, 1.0, &[(0, 1.0), (2, 2.0)]),
            (2, 2.0, &[(1, 1.0), (2, 1.0), (3, 4.0)]),
        ]);
        let stats = decoupling(&repo);
        let mut sum = 0.0;
        for s in stats.values() {
            assert!((0.0..=1.0).contains(&s.decoupling));
            assert!((s.decoupling + s.coupling - 1.0).abs() < 1e-12);
            sum += s.decoupling;
        }
        let n_c = estimate_num_clusters(&repo);
        assert!((n_c - sum).abs() < 1e-12);
        assert!((1.0 - 1e-9..=3.0 + 1e-9).contains(&n_c));
    }

    #[test]
    fn empty_repository_yields_no_stats() {
        let repo = Repository::new(DecayParams::from_spans(7.0, 14.0).unwrap());
        assert!(decoupling(&repo).is_empty());
        assert_eq!(estimate_num_clusters(&repo), 0.0);
    }
}
