//! Integration tests of the incremental machinery across crates: streaming
//! ingestion must keep statistics exact, expiration must respect the life
//! span, and incremental re-clustering must stay comparable to batch
//! clustering — the paper's §5 claims.

use khy2006::prelude::*;

fn analyzer_corpus(scale: f64) -> (Corpus, Vec<SparseVector>) {
    let corpus = Generator::new(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();
    (corpus, tfs)
}

#[test]
fn streamed_statistics_match_batch_statistics() {
    let (corpus, tfs) = analyzer_corpus(0.05);
    let decay = DecayParams::from_spans(7.0, 1000.0).unwrap(); // no expiry
                                                               // streamed: insert in arrival order with the clock following along
    let mut streamed = Repository::new(decay);
    for (a, tf) in corpus.articles().iter().zip(&tfs) {
        streamed
            .insert(DocId(a.id), Timestamp(a.day), tf.clone())
            .unwrap();
    }
    streamed.advance_to(Timestamp(178.0)).unwrap();
    // batch: same inserts, then exact recomputation
    let mut batch = streamed.clone();
    batch.recompute_from_scratch();
    assert!(
        streamed.drift() < 1e-9,
        "incremental statistics drifted {}",
        streamed.drift()
    );
    assert!((streamed.tdw() - batch.tdw()).abs() < 1e-9);
}

#[test]
fn expiration_keeps_only_documents_within_life_span() {
    let (corpus, tfs) = analyzer_corpus(0.05);
    let gamma = 21.0;
    let decay = DecayParams::from_spans(7.0, gamma).unwrap();
    let mut repo = Repository::new(decay);
    for (a, tf) in corpus.articles().iter().zip(&tfs) {
        repo.insert(DocId(a.id), Timestamp(a.day), tf.clone())
            .unwrap();
        repo.expire();
    }
    let now = repo.now();
    for (id, entry) in repo.iter() {
        assert!(
            now - entry.acquired() <= gamma + 1e-9,
            "{id} outlived the life span: age {}",
            now - entry.acquired()
        );
    }
    // and the repository is non-trivial (the last 21 days of the stream)
    assert!(repo.len() > 10);
}

#[test]
fn incremental_reclustering_tracks_batch_quality() {
    let (corpus, tfs) = analyzer_corpus(0.1);
    let windows = corpus.standard_windows();
    let w = &windows[1];
    let labels: Labeling<u32> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    let decay = DecayParams::from_spans(7.0, 30.0).unwrap();
    let config = ClusteringConfig {
        k: 16,
        seed: 22,
        ..ClusteringConfig::default()
    };

    // incremental: recluster every ~10 days during the window
    let mut pipe = NoveltyPipeline::new(decay, config.clone());
    let mut next_recluster = w.start + 10.0;
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        if a.day >= next_recluster {
            pipe.advance_to(Timestamp(next_recluster)).unwrap();
            pipe.recluster_incremental().unwrap();
            next_recluster += 10.0;
        }
        pipe.ingest(DocId(a.id), Timestamp(a.day), tfs[i].clone())
            .unwrap();
    }
    pipe.advance_to(Timestamp(w.end)).unwrap();
    let inc = pipe.recluster_incremental().unwrap();

    // batch on the full window
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())
            .unwrap();
    }
    repo.advance_to(Timestamp(w.end)).unwrap();
    let vecs = DocVectors::build(&repo);
    let batch = cluster_batch(&vecs, &config).unwrap();

    let f_inc = evaluate(&inc.member_lists(), &labels, MARKING_THRESHOLD).macro_f1;
    let f_bat = evaluate(&batch.member_lists(), &labels, MARKING_THRESHOLD).macro_f1;
    // The paper's open question: incremental results should be comparable.
    assert!(
        f_inc > 0.55 * f_bat,
        "incremental quality collapsed: {f_inc:.3} vs batch {f_bat:.3}"
    );
}

#[test]
fn warm_start_is_never_slower_in_iterations_on_static_data() {
    let (corpus, tfs) = analyzer_corpus(0.08);
    let windows = corpus.standard_windows();
    let w = &windows[0];
    let decay = DecayParams::from_spans(7.0, 30.0).unwrap();
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())
            .unwrap();
    }
    repo.advance_to(Timestamp(w.end)).unwrap();
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k: 12,
        seed: 4,
        ..ClusteringConfig::default()
    };
    let cold = cluster_batch(&vecs, &config).unwrap();
    let warm =
        cluster_with_initial(&vecs, &config, InitialState::Assignment(cold.assignment())).unwrap();
    assert!(warm.iterations() <= cold.iterations());
    // δ-convergence is not a strict fixed point, so the warm run may refine
    // the assignment further — but the clustering index G never regresses
    // (every greedy move is G-non-decreasing).
    assert!(
        warm.g() >= cold.g() - 1e-9,
        "warm start lowered G: {} < {}",
        warm.g(),
        cold.g()
    );
}

#[test]
fn pipeline_rejects_documents_from_the_past() {
    let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
    let mut pipe = NoveltyPipeline::new(decay, ClusteringConfig::default());
    let tf = SparseVector::from_entries(vec![(TermId(0), 1.0)]);
    pipe.ingest(DocId(0), Timestamp(5.0), tf.clone()).unwrap();
    let err = pipe.ingest(DocId(1), Timestamp(3.0), tf);
    assert!(err.is_err(), "out-of-order ingestion must fail");
}
