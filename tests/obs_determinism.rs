//! Recorder-on/off equivalence: enabling the observability layer must not
//! change a single bit of any clustering result. The instrumentation is a
//! pure observer — it never branches the algorithm, never reorders float
//! accumulation, never feeds a value back — and this suite pins that
//! contract across the same backend × thread matrix the determinism suite
//! uses, through a full multi-window pipeline run.

use std::collections::BTreeMap;

use khy2006::prelude::*;

const THREAD_COUNTS: [usize; 4] = [0, 1, 2, 4];

/// The tests below toggle the process-wide recorder flag, so they must not
/// interleave within this test binary.
static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tf(pairs: &[(u32, f64)]) -> SparseVector {
    SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
}

/// A three-topic stream over 12 days with enough churn to exercise moves,
/// outliers, expiration, and warm restarts.
fn stream() -> Vec<(u64, f64, SparseVector)> {
    let mut docs = Vec::new();
    for i in 0..36u64 {
        let day = i as f64 * 0.33;
        let topic = (i % 3) as u32 * 10;
        docs.push((
            i,
            day,
            tf(&[
                (topic, 3.0),
                (topic + 1, 2.0),
                (topic + 2 + (i % 2) as u32, 1.0),
            ]),
        ));
    }
    // a stray that shares no terms with any topic
    docs.push((99, 6.1, tf(&[(77, 1.0)])));
    docs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    docs
}

/// Everything observable about one window's clustering: member lists,
/// outliers, the clustering index G (bitwise), iteration count.
type WindowResult = (Vec<Vec<DocId>>, Vec<DocId>, f64, usize);

/// Runs the full pipeline (ingest → advance → expire → recluster, four
/// windows) and returns everything observable about the results.
fn run_pipeline(backend: RepBackend, threads: usize) -> Vec<WindowResult> {
    let decay = DecayParams::from_spans(4.0, 8.0).unwrap();
    let config = ClusteringConfig {
        k: 3,
        seed: 7,
        threads,
        rep_backend: backend,
        ..ClusteringConfig::default()
    };
    let mut pipeline = NoveltyPipeline::new(decay, config);
    let mut windows = Vec::new();
    let mut next = 3.0f64;
    for (id, day, tf) in stream() {
        while day >= next {
            pipeline.advance_to(Timestamp(next)).unwrap();
            let c = pipeline.recluster_incremental().unwrap();
            windows.push((
                c.member_lists(),
                c.outliers().to_vec(),
                c.g(),
                c.iterations(),
            ));
            next += 3.0;
        }
        pipeline.ingest(DocId(id), Timestamp(day), tf).unwrap();
    }
    let c = pipeline.recluster_incremental().unwrap();
    windows.push((
        c.member_lists(),
        c.outliers().to_vec(),
        c.g(),
        c.iterations(),
    ));
    windows
}

/// The core guarantee: with metric recording AND debug logging enabled, the
/// clusterings (members, outliers, bitwise G, iteration counts) are
/// identical to the recorder-off run, per window, across both representative
/// backends and all thread counts.
#[test]
fn recorder_on_off_results_are_bit_identical() {
    let _guard = flag_lock();
    for backend in [RepBackend::Sparse, RepBackend::Dense] {
        for threads in THREAD_COUNTS {
            khy2006::obs::set_enabled(false);
            let off = run_pipeline(backend, threads);

            khy2006::obs::reset();
            khy2006::obs::set_enabled(true);
            let on = run_pipeline(backend, threads);
            khy2006::obs::set_enabled(false);

            assert_eq!(
                off, on,
                "recorder flipped the result at backend {backend:?}, threads {threads}"
            );
        }
    }
}

/// While the recorder is on, the run actually populates the metrics every
/// layer promises — the snapshot is not an empty shell.
#[test]
fn enabled_run_covers_all_instrumented_layers() {
    let _guard = flag_lock();
    khy2006::obs::reset();
    khy2006::obs::set_enabled(true);
    // threads=2 so the parallel layer records fan-out decisions too
    let _ = run_pipeline(RepBackend::Sparse, 2);
    let snap = khy2006::obs::snapshot();
    khy2006::obs::set_enabled(false);

    for metric in [
        // pipeline layer
        "nidc_pipeline_ingested_docs_total",
        "nidc_pipeline_reclusters_total",
        "nidc_pipeline_expired_docs_total",
        // K-means layer
        "nidc_kmeans_runs_total",
        "nidc_kmeans_warm_starts_total",
        "nidc_kmeans_cold_starts_total",
        "nidc_kmeans_moved_docs_total",
        "nidc_kmeans_step1_candidates_total",
        // inverted-index layer
        "nidc_index_postings_touched_total",
        "nidc_index_rebuilds_total",
        // forgetting layer
        "nidc_forgetting_docs_inserted_total",
        "nidc_forgetting_docs_expired_total",
        "nidc_fp_residue_clamps_total",
        // parallel layer (registered even when the host never fans out)
        "nidc_parallel_fanouts_total",
        "nidc_parallel_sequential_total",
    ] {
        assert!(
            snap.counter(metric).is_some(),
            "metric {metric} missing from an enabled run"
        );
    }
    for histogram in [
        "nidc_pipeline_ingest_seconds",
        "nidc_pipeline_expire_seconds",
        "nidc_pipeline_recluster_seconds",
        "nidc_forgetting_advance_seconds",
        "nidc_kmeans_iterations",
        "nidc_kmeans_objective_g",
    ] {
        let h = snap
            .histogram(histogram)
            .unwrap_or_else(|| panic!("histogram {histogram} missing from an enabled run"));
        assert!(h.count > 0, "histogram {histogram} never observed");
    }
    // cross-checks that only hold because the run really happened
    assert_eq!(snap.counter("nidc_pipeline_ingested_docs_total"), Some(37));
    assert_eq!(
        snap.counter("nidc_pipeline_reclusters_total"),
        snap.counter("nidc_kmeans_runs_total"),
        "each recluster drives exactly one K-means run"
    );
    let starts = snap.counter("nidc_kmeans_warm_starts_total").unwrap()
        + snap.counter("nidc_kmeans_cold_starts_total").unwrap();
    assert_eq!(Some(starts), snap.counter("nidc_kmeans_runs_total"));
}

/// The lifecycle event stream is held to the same pure-observer contract:
/// running with an active `--events` sink (which also makes the
/// `LineageTracker` serialise every event) must not change a single bit of
/// any clustering result, across both representative backends and all
/// thread counts — and the stream left behind must be non-trivial.
#[test]
fn events_on_off_results_are_bit_identical() {
    let _guard = flag_lock();
    let path = std::env::temp_dir().join(format!(
        "nidc_obs_determinism_events_{}.jsonl",
        std::process::id()
    ));
    for backend in [RepBackend::Sparse, RepBackend::Dense] {
        for threads in THREAD_COUNTS {
            let off = run_pipeline(backend, threads);

            let session = khy2006::obs::EventSession::create(&path).unwrap();
            let on = run_pipeline(backend, threads);
            session.finish().unwrap();

            assert_eq!(
                off, on,
                "the event stream flipped the result at backend {backend:?}, threads {threads}"
            );
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines = text.lines();
            assert_eq!(
                lines.next(),
                Some("{\"schema\":\"nidc-events\",\"v\":1}"),
                "stream must start with the schema header"
            );
            assert!(
                text.contains("\"kind\":\"birth\""),
                "a multi-window run must record births: {text}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Tracing is held to the same pure-observer contract as the metrics
/// recorder: recording spans (begin/end events, ids, parent links,
/// timestamps) across every instrumented layer must not change a single bit
/// of any clustering result — and the trace the run leaves behind must be
/// well-formed (balanced, monotone per thread, parents resolving).
#[test]
fn tracing_on_off_results_are_bit_identical() {
    let _guard = flag_lock();
    for backend in [RepBackend::Sparse, RepBackend::Dense] {
        for threads in THREAD_COUNTS {
            khy2006::obs::trace::set_trace_enabled(false);
            khy2006::obs::trace::clear();
            let off = run_pipeline(backend, threads);

            khy2006::obs::trace::set_trace_enabled(true);
            let on = run_pipeline(backend, threads);
            khy2006::obs::trace::set_trace_enabled(false);
            let events = khy2006::obs::trace::drain();

            let stats = khy2006::obs::trace::validate_events(&events)
                .expect("the traced run leaves a well-formed event stream");
            assert!(stats.spans > 0, "the traced run recorded spans");
            assert_eq!(
                off, on,
                "tracing flipped the result at backend {backend:?}, threads {threads}"
            );
        }
    }
}

/// The counting allocator is held to the same pure-observer contract:
/// tracking every heap allocation must not change a single bit of any
/// clustering result, across both representative backends and all thread
/// counts.
#[test]
fn alloc_tracking_on_off_results_are_bit_identical() {
    let _guard = flag_lock();
    for backend in [RepBackend::Sparse, RepBackend::Dense] {
        for threads in THREAD_COUNTS {
            khy2006::obs::alloc::set_tracking(false);
            let off = run_pipeline(backend, threads);

            khy2006::obs::alloc::set_tracking(true);
            let on = run_pipeline(backend, threads);
            khy2006::obs::alloc::set_tracking(false);

            assert_eq!(
                off, on,
                "alloc tracking flipped the result at backend {backend:?}, threads {threads}"
            );
        }
    }
}

/// A stream small enough that every parallel call site stays below its
/// fan-out gate (`len >= 2 * threads`) for every thread count under test:
/// three documents over a three-term vocabulary — `par_chunks` over the
/// vocabulary dimension (statistics recompute) and over the document count
/// (step 1, doc-vector build) both see `len == 3 < 4`.
fn tiny_stream() -> Vec<(u64, f64, SparseVector)> {
    vec![
        (0, 0.0, tf(&[(0, 3.0), (1, 1.0)])),
        (1, 0.4, tf(&[(1, 2.0), (2, 1.0)])),
        (2, 0.8, tf(&[(2, 3.0), (0, 1.0)])),
    ]
}

/// Two ingest → advance → recluster windows over the tiny stream.
fn run_tiny(threads: usize) {
    let decay = DecayParams::from_spans(4.0, 8.0).unwrap();
    let config = ClusteringConfig {
        k: 2,
        seed: 7,
        threads,
        ..ClusteringConfig::default()
    };
    let mut pipeline = NoveltyPipeline::new(decay, config);
    for (id, day, tf) in tiny_stream() {
        pipeline.ingest(DocId(id), Timestamp(day), tf).unwrap();
    }
    pipeline.advance_to(Timestamp(1.0)).unwrap();
    let _ = pipeline.recluster_incremental().unwrap();
    pipeline.advance_to(Timestamp(2.0)).unwrap();
    let _ = pipeline.recluster_incremental().unwrap();
}

/// For a fixed seed and config, allocation tallies are a pure function of
/// the input — not of the thread count. The workload stays below every
/// fan-out gate so all four thread counts run the identical sequential
/// code path, and the per-thread tallies (immune to allocations from other
/// test threads) must agree exactly.
#[test]
fn alloc_counts_are_thread_count_invariant() {
    let _guard = flag_lock();
    khy2006::obs::set_enabled(false);
    khy2006::obs::trace::set_trace_enabled(false);
    khy2006::obs::alloc::set_tracking(true);
    // Warm-up: absorb one-time allocations (lazy registration, TLS and
    // OnceLock first touches) before measuring.
    for threads in THREAD_COUNTS {
        run_tiny(threads);
    }
    let deltas: Vec<(u64, u64)> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let (a0, b0) = khy2006::obs::alloc::thread_tallies();
            run_tiny(threads);
            let (a1, b1) = khy2006::obs::alloc::thread_tallies();
            (a1 - a0, b1 - b0)
        })
        .collect();
    khy2006::obs::alloc::set_tracking(false);

    assert!(deltas[0].0 > 0, "the pipeline run allocates");
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(
            *d, deltas[0],
            "allocation tallies diverged at threads={}",
            THREAD_COUNTS[i]
        );
    }
}

/// `par_map_mut` attributes worker-thread allocations back to the caller:
/// whatever the thread count, the caller's per-thread tallies grow by at
/// least the closures' own allocations (16 boxed slices of 512 × u64),
/// because fan-out runs fold worker deltas into the calling thread before
/// returning.
#[test]
fn par_map_mut_folds_worker_allocations_into_the_caller() {
    let _guard = flag_lock();
    khy2006::obs::alloc::set_tracking(true);
    for threads in THREAD_COUNTS {
        let mut items: Vec<u64> = (0..16).collect();
        let (a0, b0) = khy2006::obs::alloc::thread_tallies();
        let out = nidc_parallel::par_map_mut(&mut items, threads, |x| vec![*x; 512]);
        let (a1, b1) = khy2006::obs::alloc::thread_tallies();
        assert_eq!(out.len(), 16);
        assert!(
            a1 - a0 >= 16,
            "caller saw only {} allocations at threads={threads}",
            a1 - a0
        );
        assert!(
            b1 - b0 >= 16 * 512 * 8,
            "caller saw only {} bytes at threads={threads}",
            b1 - b0
        );
    }
    khy2006::obs::alloc::set_tracking(false);
}

/// Warm-start bookkeeping survives the recorder: running the same
/// assignment twice through `cluster_with_initial` with metrics on yields
/// the same clustering as with metrics off.
#[test]
fn warm_start_equivalence_with_recorder() {
    let _guard = flag_lock();
    let mut repo = Repository::new(DecayParams::from_spans(7.0, 30.0).unwrap());
    for (id, day, tf) in stream() {
        repo.insert(DocId(id), Timestamp(day), tf).unwrap();
    }
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k: 3,
        seed: 11,
        ..ClusteringConfig::default()
    };
    let cold = cluster_batch(&vecs, &config).unwrap();
    let prev: BTreeMap<DocId, usize> = cold.assignment();

    khy2006::obs::set_enabled(false);
    let off = cluster_with_initial(&vecs, &config, InitialState::Assignment(prev.clone())).unwrap();
    khy2006::obs::set_enabled(true);
    let on = cluster_with_initial(&vecs, &config, InitialState::Assignment(prev)).unwrap();
    khy2006::obs::set_enabled(false);

    assert_eq!(off.member_lists(), on.member_lists());
    assert_eq!(off.outliers(), on.outliers());
    assert!(off.g() == on.g(), "G must be bitwise equal");
    assert_eq!(off.iterations(), on.iterations());
}
