//! The determinism contract of `nidc-parallel`: every parallel hot path
//! produces **bit-identical** results for any thread count. These tests pin
//! the contract for the four ported paths — φ-vector build, GAC, the
//! extended K-means, and the from-scratch statistics rebuild — plus the
//! interaction of `expire()` with a threaded pipeline window run.

use khy2006::baselines::{gac, GacConfig};
use khy2006::prelude::*;
use khy2006::textproc::{SparseVector, TermId};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

fn tf(pairs: &[(u32, f64)]) -> SparseVector {
    SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
}

/// A strategy for small synthetic document streams: `(term, weight)` lists
/// arriving on a slowly advancing clock.
fn doc_stream() -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..40, 1u64..9), 1..6), 3..40).prop_map(
        |docs| {
            docs.into_iter()
                .map(|d| d.into_iter().map(|(t, w)| (t, w as f64)).collect())
                .collect()
        },
    )
}

fn repo_from(docs: &[Vec<(u32, f64)>]) -> Repository {
    let mut repo = Repository::new(DecayParams::from_spans(7.0, 30.0).unwrap());
    for (i, d) in docs.iter().enumerate() {
        repo.insert(DocId(i as u64), Timestamp(0.25 * i as f64), tf(d))
            .unwrap();
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn docvectors_build_is_thread_count_invariant(docs in doc_stream()) {
        let repo = repo_from(&docs);
        let seq = DocVectors::build(&repo);
        for threads in THREAD_COUNTS {
            let par = DocVectors::build_parallel(&repo, threads);
            prop_assert_eq!(par.len(), seq.len());
            for id in seq.ids() {
                prop_assert_eq!(
                    par.phi(id).unwrap().entries(), seq.phi(id).unwrap().entries(),
                    "phi differs at threads={}", threads
                );
                prop_assert!(
                    par.self_sim(id).unwrap() == seq.self_sim(id).unwrap(),
                    "self_sim differs at threads={}", threads
                );
            }
        }
    }

    #[test]
    fn gac_is_thread_count_invariant(docs in doc_stream()) {
        let pairs: Vec<(DocId, SparseVector)> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId(i as u64), tf(d)))
            .collect();
        let base = GacConfig {
            target_clusters: 3,
            bucket_size: 8,
            reduction: 0.5,
            threads: 1,
        };
        let seq = gac(&pairs, &base);
        for threads in THREAD_COUNTS {
            let par = gac(&pairs, &GacConfig { threads, ..base.clone() });
            prop_assert_eq!(&par, &seq, "GAC clustering differs at threads={}", threads);
        }
    }

    #[test]
    fn cluster_batch_is_thread_count_invariant(docs in doc_stream(), seed in 0u64..500) {
        let repo = repo_from(&docs);
        let vecs = DocVectors::build(&repo);
        let base = ClusteringConfig { k: 4, seed, threads: 1, ..ClusteringConfig::default() };
        let seq = cluster_batch(&vecs, &base).unwrap();
        for threads in THREAD_COUNTS {
            let config = ClusteringConfig { threads, ..base.clone() };
            let par = cluster_batch(&vecs, &config).unwrap();
            prop_assert_eq!(par.member_lists(), seq.member_lists(),
                "membership differs at threads={}", threads);
            prop_assert!(par.g() == seq.g(), "G differs at threads={}: {} vs {}",
                threads, par.g(), seq.g());
            prop_assert_eq!(par.iterations(), seq.iterations(),
                "iteration count differs at threads={}", threads);
            prop_assert_eq!(par.outliers(), seq.outliers(),
                "outliers differ at threads={}", threads);
        }
    }

    #[test]
    fn recompute_from_scratch_is_thread_count_invariant(docs in doc_stream()) {
        let mut seq = repo_from(&docs);
        seq.advance_to(Timestamp(docs.len() as f64)).unwrap();
        let mut variants: Vec<Repository> =
            THREAD_COUNTS.iter().map(|_| seq.clone()).collect();
        seq.recompute_from_scratch();
        for (threads, repo) in THREAD_COUNTS.iter().zip(variants.iter_mut()) {
            repo.recompute_from_scratch_with(*threads);
            prop_assert!(repo.tdw() == seq.tdw(),
                "tdw differs at threads={}: {} vs {}", threads, repo.tdw(), seq.tdw());
            prop_assert_eq!(repo.vocab_dim(), seq.vocab_dim(),
                "vocab_dim differs at threads={}", threads);
            for k in 0..seq.vocab_dim() {
                let t = TermId(k as u32);
                prop_assert!(repo.pr_term(t) == seq.pr_term(t),
                    "pr_term({}) differs at threads={}", k, threads);
            }
            for id in seq.doc_ids() {
                prop_assert!(
                    repo.doc_weight(id).unwrap() == seq.doc_weight(id).unwrap(),
                    "weight of {} differs at threads={}", id, threads
                );
            }
        }
    }
}

/// Regression: expiring documents mid-stream while the pipeline runs its
/// threaded window re-clusterings must leave the incremental statistics
/// exact — the clamp in `Repository::remove` may only absorb fp residue,
/// never a real accounting error.
#[test]
fn expire_during_threaded_window_run_keeps_statistics_exact() {
    for threads in THREAD_COUNTS {
        let mut pipeline = NoveltyPipeline::new(
            DecayParams::from_spans(7.0, 14.0).unwrap(),
            ClusteringConfig {
                k: 4,
                seed: 9,
                threads,
                ..ClusteringConfig::default()
            },
        );
        let mut id = 0u64;
        for day in 0..45 {
            let t = Timestamp(day as f64);
            for j in 0..4u32 {
                pipeline
                    .ingest(
                        DocId(id),
                        t,
                        tf(&[(j * 3 + (day % 3) as u32, 2.0), (30 + (id % 7) as u32, 1.0)]),
                    )
                    .unwrap();
                id += 1;
            }
            if day % 5 == 4 {
                // a full window step: decay, expire, threaded re-clustering
                pipeline.recluster_incremental().unwrap();
            }
        }
        let drift = pipeline.repository().drift();
        assert!(
            drift < 1e-9,
            "threads={threads}: incremental statistics drifted by {drift}"
        );
    }
}

/// The same clustering through the full pipeline for every thread count —
/// the end-to-end version of the per-path invariance tests above.
#[test]
fn pipeline_window_runs_are_thread_count_invariant() {
    let mut reference: Option<Vec<Vec<DocId>>> = None;
    for threads in THREAD_COUNTS {
        let mut pipeline = NoveltyPipeline::new(
            DecayParams::from_spans(7.0, 21.0).unwrap(),
            ClusteringConfig {
                k: 3,
                seed: 5,
                threads,
                ..ClusteringConfig::default()
            },
        );
        let mut last = None;
        for day in 0..20 {
            let t = Timestamp(day as f64);
            for j in 0..3u32 {
                pipeline
                    .ingest(
                        DocId((day * 3 + j as i64) as u64),
                        t,
                        tf(&[(j * 4, 3.0), (j * 4 + 1 + (day % 2) as u32, 1.0)]),
                    )
                    .unwrap();
            }
            if day % 4 == 3 {
                last = Some(pipeline.recluster_incremental().unwrap().member_lists());
            }
        }
        let last = last.expect("at least one window ran");
        match &reference {
            None => reference = Some(last),
            Some(r) => assert_eq!(&last, r, "threads={threads} diverged"),
        }
    }
}
