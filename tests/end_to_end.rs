//! End-to-end integration: synthetic corpus → text processing → forgetting
//! statistics → extended K-means → evaluation, across crate boundaries.

use khy2006::corpus::TopicId;
use khy2006::prelude::*;

/// Builds a prepared (tokenised) corpus at the given scale.
fn prepared(scale: f64) -> (Corpus, Vec<SparseVector>) {
    let corpus = Generator::new(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();
    (corpus, tfs)
}

fn window_clustering(
    corpus: &Corpus,
    tfs: &[SparseVector],
    window_idx: usize,
    beta: f64,
    seed: u64,
) -> (Clustering, Labeling<u32>, usize) {
    let windows = corpus.standard_windows();
    let w = &windows[window_idx];
    let decay = DecayParams::from_spans(beta, 30.0).unwrap();
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())
            .unwrap();
    }
    repo.advance_to(Timestamp(w.end)).unwrap();
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k: 16,
        seed,
        ..ClusteringConfig::default()
    };
    let clustering = cluster_batch(&vecs, &config).unwrap();
    let labels: Labeling<u32> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    (clustering, labels, w.len())
}

#[test]
fn clustering_covers_every_window_document_exactly_once() {
    let (corpus, tfs) = prepared(0.1);
    let (clustering, _, window_len) = window_clustering(&corpus, &tfs, 0, 7.0, 3);
    assert_eq!(
        clustering.assigned_docs() + clustering.outliers().len(),
        window_len
    );
    let mut seen = std::collections::HashSet::new();
    for c in clustering.clusters() {
        for d in c.members() {
            assert!(seen.insert(*d));
        }
    }
    for d in clustering.outliers() {
        assert!(seen.insert(*d));
    }
}

#[test]
fn clustering_quality_beats_random_assignment() {
    let (corpus, tfs) = prepared(0.15);
    let (clustering, labels, _) = window_clustering(&corpus, &tfs, 0, 30.0, 5);
    let eval = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
    assert!(
        eval.micro_f1 > 0.25,
        "micro F1 unreasonably low: {}",
        eval.micro_f1
    );
    assert!(
        purity(&clustering.member_lists(), &labels) > 0.5,
        "purity too low"
    );
    assert!(
        nmi(&clustering.member_lists(), &labels) > 0.4,
        "NMI too low"
    );
}

#[test]
fn big_topics_get_marked_clusters() {
    let (corpus, tfs) = prepared(0.2);
    let (clustering, labels, _) = window_clustering(&corpus, &tfs, 0, 30.0, 5);
    let eval = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
    // Asian Economic Crisis (20001) is the biggest window-1 topic; any sane
    // clustering of window 1 detects it.
    assert!(
        eval.detects(20001),
        "Asian Economic Crisis not detected; detected = {:?}",
        eval.detected_topics
    );
}

#[test]
fn novelty_bias_produces_more_outliers_for_short_half_life() {
    let (corpus, tfs) = prepared(0.15);
    let (c7, _, _) = window_clustering(&corpus, &tfs, 0, 7.0, 5);
    let (c30, _, _) = window_clustering(&corpus, &tfs, 0, 30.0, 5);
    assert!(
        c7.outliers().len() > c30.outliers().len(),
        "short half-life should discard more (old) documents: {} vs {}",
        c7.outliers().len(),
        c30.outliers().len()
    );
}

#[test]
fn full_text_pipeline_handles_real_english() {
    // exercise the English pipeline (stop words + Porter) end to end
    let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
    let config = ClusteringConfig {
        k: 2,
        seed: 1,
        ..ClusteringConfig::default()
    };
    let mut pipeline = NoveltyPipeline::new(decay, config);
    let analyzer = Pipeline::english();
    let mut vocab = Vocabulary::new();
    let docs = [
        "The economy contracted as markets tumbled across Asia.",
        "Asian markets tumble again; economic contraction deepens.",
        "The striker scored twice and the champions won the final.",
        "Champions win the final after the striker's late goals.",
    ];
    for (i, text) in docs.iter().enumerate() {
        let tf = analyzer.analyze(text, &mut vocab).to_sparse();
        pipeline
            .ingest(DocId(i as u64), Timestamp(0.1 * i as f64), tf)
            .unwrap();
    }
    let clustering = pipeline.recluster_incremental().unwrap();
    // both topic pairs should end up together (or one as outliers, never mixed)
    for c in clustering.clusters() {
        let econ = c.members().iter().filter(|d| d.0 < 2).count();
        assert!(
            econ == 0 || econ == c.len(),
            "mixed cluster: {:?}",
            c.members()
        );
    }
}

#[test]
fn corpus_roundtrips_through_jsonl_file() {
    let (corpus, _) = prepared(0.05);
    let dir = std::env::temp_dir().join("nidc_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.jsonl");
    corpus
        .save_jsonl(std::fs::File::create(&path).unwrap())
        .unwrap();
    let back = Corpus::load_jsonl(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back.len(), corpus.len());
    assert_eq!(back.topics().len(), corpus.topics().len());
    assert_eq!(
        back.topic_name(TopicId(20001)),
        corpus.topic_name(TopicId(20001))
    );
    std::fs::remove_file(&path).ok();
}
