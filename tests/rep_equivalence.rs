//! Dense ↔ sparse representative equivalence: the two backends of
//! [`ClusterRep`] (and the term→cluster [`ClusterIndex`] the sparse backend
//! routes the step-1 sweep through) must produce **bit-identical** results —
//! not merely close ones — through arbitrary add/remove/expire churn and for
//! every thread count. This is the contract that lets `RepBackend::Sparse`
//! be the default without weakening the workspace's determinism guarantees.

use std::collections::BTreeMap;

use khy2006::prelude::*;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

fn tf(pairs: &[(u32, f64)]) -> SparseVector {
    SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
}

/// Small synthetic document streams: `(term, weight)` lists arriving on a
/// slowly advancing clock (same shape as the determinism suite's strategy).
fn doc_stream() -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..40, 1u64..9), 1..6), 3..40).prop_map(
        |docs| {
            docs.into_iter()
                .map(|d| d.into_iter().map(|(t, w)| (t, w as f64)).collect())
                .collect()
        },
    )
}

fn repo_from(docs: &[Vec<(u32, f64)>]) -> Repository {
    let mut repo = Repository::new(DecayParams::from_spans(7.0, 30.0).unwrap());
    for (i, d) in docs.iter().enumerate() {
        repo.insert(DocId(i as u64), Timestamp(0.25 * i as f64), tf(d))
            .unwrap();
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full extended K-means: same clustering, same G (bitwise), same
    /// iteration count and outliers, for both backends and every thread
    /// count — the matrix the determinism suite pins for `threads` alone.
    #[test]
    fn cluster_batch_is_backend_invariant(docs in doc_stream(), seed in 0u64..500) {
        let repo = repo_from(&docs);
        let vecs = DocVectors::build(&repo);
        let reference = cluster_batch(&vecs, &ClusteringConfig {
            k: 4, seed, threads: 1, rep_backend: RepBackend::Dense,
            ..ClusteringConfig::default()
        }).unwrap();
        for backend in [RepBackend::Dense, RepBackend::Sparse] {
            for threads in THREAD_COUNTS {
                let config = ClusteringConfig {
                    k: 4, seed, threads, rep_backend: backend,
                    ..ClusteringConfig::default()
                };
                let got = cluster_batch(&vecs, &config).unwrap();
                prop_assert_eq!(got.member_lists(), reference.member_lists(),
                    "membership differs at backend={} threads={}", backend, threads);
                prop_assert!(got.g() == reference.g(),
                    "G differs at backend={} threads={}: {} vs {}",
                    backend, threads, got.g(), reference.g());
                prop_assert_eq!(got.iterations(), reference.iterations(),
                    "iteration count differs at backend={} threads={}", backend, threads);
                prop_assert_eq!(got.outliers(), reference.outliers(),
                    "outliers differ at backend={} threads={}", backend, threads);
            }
        }
    }

    /// The step-1 scoring sweep in isolation: for every document, the
    /// inverted-index row (`ClusterIndex::dot_all`) and the per-cluster
    /// dense dots agree bitwise, so the argmax winner is the same document
    /// by document.
    #[test]
    fn step1_winner_is_backend_invariant(docs in doc_stream(), k in 2usize..6) {
        let repo = repo_from(&docs);
        let vecs = DocVectors::build(&repo);
        let ids = vecs.ids();
        // deal documents round-robin into k clusters, mirrored three ways
        let mut dense = vec![ClusterRep::new_with(RepBackend::Dense); k];
        let mut sparse = vec![ClusterRep::new_with(RepBackend::Sparse); k];
        let mut index = ClusterIndex::new(k);
        for (i, &d) in ids.iter().enumerate() {
            let phi = vecs.phi(d).unwrap();
            dense[i % k].add(phi);
            sparse[i % k].add(phi);
            index.add(i % k, phi);
        }
        let mut row = vec![0.0; k];
        for &d in &ids {
            let phi = vecs.phi(d).unwrap();
            index.dot_all(phi, &mut row);
            let mut winner_dense = 0usize;
            let mut winner_index = 0usize;
            for q in 0..k {
                let dd = dense[q].dot_doc(phi);
                prop_assert!(row[q] == dd,
                    "dot differs for {} cluster {}: index {} vs dense {}", d, q, row[q], dd);
                prop_assert!(sparse[q].dot_doc(phi) == dd);
                if dd > dense[winner_dense].dot_doc(phi) { winner_dense = q; }
                if row[q] > row[winner_index] { winner_index = q; }
            }
            prop_assert_eq!(winner_dense, winner_index);
        }
    }

    /// The full pipeline with decay and expiration: ingest/expire churn
    /// feeds the same removals through both backends; every window's
    /// clustering must match bitwise.
    #[test]
    fn pipeline_with_expiry_is_backend_invariant(
        docs in doc_stream(),
        seed in 0u64..100,
    ) {
        let mut per_backend: Vec<Vec<Vec<Vec<DocId>>>> = Vec::new();
        for backend in [RepBackend::Dense, RepBackend::Sparse] {
            let mut pipeline = NoveltyPipeline::new(
                DecayParams::from_spans(3.0, 6.0).unwrap(),
                ClusteringConfig {
                    k: 3, seed, rep_backend: backend,
                    ..ClusteringConfig::default()
                },
            );
            let mut windows = Vec::new();
            for (i, d) in docs.iter().enumerate() {
                // a fast clock (one day per doc) so expiration actually
                // fires mid-stream with γ = 6
                pipeline.ingest(DocId(i as u64), Timestamp(i as f64), tf(d)).unwrap();
                if i % 5 == 4 {
                    windows.push(pipeline.recluster_incremental().unwrap().member_lists());
                }
            }
            windows.push(pipeline.recluster_incremental().unwrap().member_lists());
            per_backend.push(windows);
        }
        prop_assert_eq!(&per_backend[0], &per_backend[1],
            "windows diverged between dense and sparse backends");
    }
}

/// The expire → warm-start path: expired documents are pruned from the
/// previous assignment in the same pass (`Repository::expire_with`), so the
/// K-means initial state never carries dead keys — and the result is the
/// same for both backends.
#[test]
fn expired_documents_leave_the_warm_start_assignment() {
    for backend in [RepBackend::Dense, RepBackend::Sparse] {
        let mut pipeline = NoveltyPipeline::new(
            DecayParams::from_spans(3.0, 6.0).unwrap(),
            ClusteringConfig {
                k: 2,
                seed: 7,
                rep_backend: backend,
                ..ClusteringConfig::default()
            },
        );
        for i in 0..8u64 {
            pipeline
                .ingest(
                    DocId(i),
                    Timestamp(0.1 * i as f64),
                    tf(&[(i as u32 % 2 * 8, 3.0), (1 + i as u32 % 2 * 8, 1.0)]),
                )
                .unwrap();
        }
        pipeline.recluster_incremental().unwrap();
        let before: BTreeMap<DocId, usize> = pipeline.previous_assignment().unwrap().clone();
        assert!(!before.is_empty());
        // jump past γ: everything expires
        pipeline.advance_to(Timestamp(20.0)).unwrap();
        let dead = pipeline.expire();
        assert_eq!(dead.len(), 8, "backend={backend}: all docs must expire");
        assert!(
            pipeline.previous_assignment().unwrap().is_empty(),
            "backend={backend}: warm-start assignment still holds expired keys"
        );
    }
}
