//! The determinism contract of the sharded pipeline (`ShardedPipeline`):
//!
//! * **1 shard is the pipeline** — with `shards = 1` the sharded pipeline is
//!   bit-identical to a plain `NoveltyPipeline` driven with the same stream,
//!   for both cluster-representative backends;
//! * **thread-count invariance** — for any fixed shard count the merged
//!   result is bit-identical across inner thread counts (the shard fan-out
//!   and each pipeline's internal parallelism may only change wall-clock,
//!   never bits);
//! * **checkpoint transparency** — saving mid-stream, loading, and
//!   continuing produces exactly the run that never stopped.

use khy2006::prelude::*;
use khy2006::textproc::{SparseVector, TermId};

const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

fn tf(pairs: &[(u32, f64)]) -> SparseVector {
    SparseVector::from_entries(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
}

/// A deterministic 3-topic stream: `(id, day, tf)` for 30 days × 3 docs/day,
/// with enough term drift that re-clusterings actually move documents.
fn stream() -> Vec<(DocId, f64, SparseVector)> {
    let mut docs = Vec::new();
    let mut id = 0u64;
    for day in 0..30u32 {
        for topic in 0..3u32 {
            let t = tf(&[
                (topic * 8, 3.0),
                (topic * 8 + 1 + day % 3, 2.0),
                (24 + (id % 5) as u32, 1.0),
            ]);
            docs.push((DocId(id), day as f64, t));
            id += 1;
        }
    }
    docs
}

fn config(threads: usize, rep_backend: RepBackend) -> ClusteringConfig {
    ClusteringConfig {
        k: 4,
        seed: 7,
        threads,
        rep_backend,
        ..ClusteringConfig::default()
    }
}

/// The observable outcome of a run, compared bit for bit. The stitched
/// fields are `None` when no stitching pass ran (a single shard).
#[derive(Debug, PartialEq)]
struct Outcome {
    members: Vec<Vec<DocId>>,
    outliers: Vec<DocId>,
    g_bits: u64,
    num_docs: usize,
    stitched_members: Option<Vec<Vec<DocId>>>,
    stitched_g_bits: Option<u64>,
}

/// Replays `docs` through a sharded pipeline, re-clustering every 5 days,
/// and returns the final merged result.
fn drive_sharded(pipeline: &mut ShardedPipeline, docs: &[(DocId, f64, SparseVector)]) -> Outcome {
    let mut merged = None;
    for (id, day, tf) in docs {
        pipeline.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
        if id.0 % 15 == 14 {
            merged = Some(pipeline.recluster_incremental().unwrap());
        }
    }
    let merged = merged.expect("at least one window ran");
    Outcome {
        members: merged.member_lists(),
        outliers: merged.outliers(),
        g_bits: merged.g().to_bits(),
        num_docs: pipeline.num_docs(),
        stitched_members: merged.stitched().map(|s| s.member_lists()),
        stitched_g_bits: merged.stitched().map(|s| s.g().to_bits()),
    }
}

fn decay() -> DecayParams {
    DecayParams::from_spans(7.0, 21.0).unwrap()
}

#[test]
fn one_shard_is_bit_identical_to_the_unsharded_pipeline() {
    for rep in [RepBackend::Sparse, RepBackend::Dense] {
        let docs = stream();

        let mut plain = NoveltyPipeline::new(decay(), config(0, rep));
        let mut last = None;
        for (id, day, tf) in &docs {
            plain.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
            if id.0 % 15 == 14 {
                last = Some(plain.recluster_incremental().unwrap());
            }
        }
        let last = last.unwrap();

        let mut sharded = ShardedPipeline::new(decay(), config(0, rep), 1).unwrap();
        let outcome = drive_sharded(&mut sharded, &docs);

        assert_eq!(outcome.members, last.member_lists(), "rep={rep:?}");
        // the merged view canonicalises outliers into sorted order
        let mut plain_outliers = last.outliers().to_vec();
        plain_outliers.sort_unstable();
        assert_eq!(outcome.outliers, plain_outliers, "rep={rep:?}");
        assert_eq!(outcome.g_bits, last.g().to_bits(), "rep={rep:?}");
        assert_eq!(outcome.num_docs, plain.repository().len(), "rep={rep:?}");
        // one shard has nothing to stitch: the pipeline skips the pass
        assert_eq!(outcome.stitched_members, None, "rep={rep:?}");
    }
}

#[test]
fn one_shard_stitch_is_a_no_op_bit_identical_to_unsharded() {
    for rep in [RepBackend::Sparse, RepBackend::Dense] {
        let docs = stream();

        let mut plain = NoveltyPipeline::new(decay(), config(0, rep));
        let mut last = None;
        for (id, day, tf) in &docs {
            plain.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
            if id.0 % 15 == 14 {
                last = Some(plain.recluster_incremental().unwrap());
            }
        }
        let last = last.unwrap();

        let mut sharded = ShardedPipeline::new(decay(), config(0, rep), 1).unwrap();
        let mut merged = None;
        for (id, day, tf) in &docs {
            sharded.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
            if id.0 % 15 == 14 {
                merged = Some(sharded.recluster_incremental().unwrap());
            }
        }
        // force the pass explicitly (the pipeline skips it for one shard)
        // at the most aggressive threshold: still the identity
        let stitched = merged.unwrap().stitch(0.0);
        assert_eq!(stitched.merges(), 0, "rep={rep:?}");
        assert_eq!(stitched.member_lists(), last.member_lists(), "rep={rep:?}");
        let mut plain_outliers = last.outliers().to_vec();
        plain_outliers.sort_unstable();
        assert_eq!(stitched.outliers(), plain_outliers, "rep={rep:?}");
        assert_eq!(
            stitched.g().to_bits(),
            last.g().to_bits(),
            "rep={rep:?}: single-shard stitched G must be bit-identical"
        );
    }
}

#[test]
fn fixed_shard_count_is_thread_and_backend_invariant() {
    // The merged AND stitched outcomes must be bit-identical across every
    // inner thread count and both representative backends: stitching is
    // sequential (thread counts cannot reorder it) and folds every rep onto
    // the sparse backend first (backends cannot change its bits).
    for shards in [2usize, 3] {
        let docs = stream();
        let mut reference: Option<Outcome> = None;
        for rep in [RepBackend::Sparse, RepBackend::Dense] {
            for threads in THREAD_COUNTS {
                let mut pipeline =
                    ShardedPipeline::new(decay(), config(threads, rep), shards).unwrap();
                let outcome = drive_sharded(&mut pipeline, &docs);
                assert!(
                    outcome.stitched_members.is_some(),
                    "stitching defaults on for shards > 1"
                );
                match &reference {
                    None => reference = Some(outcome),
                    Some(r) => assert_eq!(
                        &outcome, r,
                        "shards={shards} threads={threads} rep={rep:?} diverged"
                    ),
                }
            }
        }
    }
}

#[test]
fn checkpoint_save_load_continue_matches_the_uninterrupted_run() {
    let docs = stream();
    let (first, second) = docs.split_at(docs.len() / 2);

    // the run that never stops
    let mut straight = ShardedPipeline::new(decay(), config(0, RepBackend::Sparse), 3).unwrap();
    for (id, day, tf) in first {
        straight.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
    }
    straight.recluster_incremental().unwrap();

    // checkpoint right after the mid-stream re-clustering, then reload
    let mut json = Vec::new();
    straight.save_json(&mut json).unwrap();
    let mut resumed = ShardedPipeline::load_json(&json[..]).unwrap();
    assert_eq!(resumed.num_shards(), 3);
    assert_eq!(resumed.num_docs(), straight.num_docs());

    let finish = |pipeline: &mut ShardedPipeline| {
        for (id, day, tf) in second {
            pipeline.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
        }
        let merged = pipeline.recluster_incremental().unwrap();
        (
            merged.member_lists(),
            merged.outliers(),
            merged.g().to_bits(),
        )
    };
    let expected = finish(&mut straight);
    let actual = finish(&mut resumed);
    assert_eq!(
        actual, expected,
        "resumed run diverged from uninterrupted run"
    );
}

/// Lineage ids are pipeline state: a checkpoint taken after a re-clustering
/// carries the `LineageTracker` (ids, window index, previous clusters with
/// verbatim representatives), so the resumed run assigns exactly the ids
/// the uninterrupted run would have — continuations keep continuing rather
/// than being reborn.
#[test]
fn lineage_ids_survive_checkpoint_save_load_continue() {
    let docs = stream();
    let (first, second) = docs.split_at(docs.len() / 2);

    let mut straight = ShardedPipeline::new(decay(), config(0, RepBackend::Sparse), 3).unwrap();
    for (id, day, tf) in first {
        straight.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
    }
    straight.recluster_incremental().unwrap();
    let tracker = straight
        .lineage()
        .expect("lineage tracking is on by default");
    assert_eq!(tracker.windows_observed(), 1);
    let mid_lineages = tracker.current_lineages();
    assert!(!mid_lineages.is_empty(), "first window produced clusters");

    let mut json = Vec::new();
    straight.save_json(&mut json).unwrap();
    let mut resumed = ShardedPipeline::load_json(&json[..]).unwrap();
    assert_eq!(
        resumed.lineage().map(|t| t.current_lineages()),
        Some(mid_lineages),
        "the checkpoint must carry the lineage assignment verbatim"
    );

    let finish = |pipeline: &mut ShardedPipeline| {
        for (id, day, tf) in second {
            pipeline.ingest(*id, Timestamp(*day), tf.clone()).unwrap();
        }
        pipeline.recluster_incremental().unwrap();
        let t = pipeline.lineage().expect("still tracking");
        (t.windows_observed(), t.current_lineages())
    };
    let expected = finish(&mut straight);
    let actual = finish(&mut resumed);
    assert_eq!(
        actual, expected,
        "lineage ids diverged after checkpoint save → load → continue"
    );
    assert_eq!(expected.0, 2, "both windows count");
}

/// The documented id-stability guarantee of the merged/stitched views:
/// a `MergedClustering` keys every cluster by its `(shard, local)` id, and
/// when stitching reunites cross-shard fragments the surviving
/// `StitchedCluster` keeps the **lowest shard-major source id** — so ids
/// remain stable handles for downstream consumers (the lineage tracker
/// among them) instead of depending on agglomeration order.
#[test]
fn stitched_clusters_keep_the_lowest_shard_major_source_id() {
    let docs = stream();
    let mut pipeline = ShardedPipeline::new(decay(), config(0, RepBackend::Sparse), 3).unwrap();
    let outcome = drive_sharded(&mut pipeline, &docs);
    assert!(outcome.stitched_members.is_some());

    let merged = pipeline.recluster_incremental().unwrap();
    let stitched = merged.stitched().expect("stitching defaults on");
    let mut seen = std::collections::BTreeSet::new();
    let mut cross_shard = 0usize;
    for c in stitched
        .clusters()
        .iter()
        .filter(|c| !c.members().is_empty())
    {
        assert!(!c.sources().is_empty(), "every cluster records its sources");
        assert_eq!(
            Some(&c.id()),
            c.sources().iter().min(),
            "stitched id must be the lowest shard-major source id"
        );
        assert!(seen.insert(c.id()), "stitched ids must be unique");
        if c.sources().len() > 1 {
            cross_shard += 1;
        }
    }
    assert_eq!(
        stitched.merges(),
        stitched
            .clusters()
            .iter()
            .filter(|c| !c.members().is_empty())
            .map(|c| c.sources().len() - 1)
            .sum::<usize>(),
        "merge count must equal the fragments folded away"
    );
    // the 3-topic stream split over 3 shards fragments every topic, so the
    // stitcher has real work to do — this guards against the guarantee
    // holding vacuously
    assert!(cross_shard > 0, "no cross-shard stitches happened");
}
