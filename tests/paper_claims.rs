//! The paper's headline claims, asserted at reduced scale so the suite stays
//! fast. (The full-scale versions are the `nidc-bench` experiment binaries;
//! EXPERIMENTS.md records their outputs.)

use khy2006::prelude::*;

struct Prep {
    corpus: Corpus,
    tfs: Vec<SparseVector>,
}

fn prep(scale: f64) -> Prep {
    let corpus = Generator::new(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();
    Prep { corpus, tfs }
}

fn window_eval(p: &Prep, wi: usize, beta: f64, seed: u64) -> (Clustering, f64, f64) {
    let windows = p.corpus.standard_windows();
    let w = &windows[wi];
    let decay = DecayParams::from_spans(beta, 30.0).unwrap();
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &p.corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), p.tfs[i].clone())
            .unwrap();
    }
    repo.advance_to(Timestamp(w.end)).unwrap();
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k: 24,
        seed,
        ..ClusteringConfig::default()
    };
    let clustering = cluster_batch(&vecs, &config).unwrap();
    let labels: Labeling<u32> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &p.corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    let e = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
    (clustering, e.micro_f1, e.macro_f1)
}

/// Table 4's direction: the long half-life (≈ conventional clustering) has
/// the better macro F1 — averaged over seeds and windows at 0.3 scale.
#[test]
fn table4_long_half_life_wins_macro_f1_on_average() {
    let p = prep(0.3);
    let mut diff = 0.0;
    let mut n = 0;
    for wi in [0usize, 3, 5] {
        for seed in [11u64, 22] {
            let (_, _, macro7) = window_eval(&p, wi, 7.0, seed);
            let (_, _, macro30) = window_eval(&p, wi, 30.0, seed);
            diff += macro30 - macro7;
            n += 1;
        }
    }
    let mean_diff = diff / n as f64;
    assert!(
        mean_diff > -0.02,
        "beta=30 should not lose macro F1 on average (mean diff {mean_diff:.3})"
    );
}

/// Experiment 1's stats-update claim: the incremental update is much
/// cheaper than the from-scratch rebuild (here measured in work, not time:
/// one day of inserts + an O(n+V) decay pass vs an O(total tokens) pass).
#[test]
fn incremental_stats_update_is_cheap_and_exact() {
    let p = prep(0.2);
    let decay = DecayParams::from_spans(7.0, 14.0).unwrap();
    let mut repo = Repository::new(decay);
    for (a, tf) in p.corpus.articles().iter().zip(&p.tfs) {
        if a.day < 20.0 {
            repo.insert(DocId(a.id), Timestamp(a.day), tf.clone())
                .unwrap();
        }
    }
    // one more day, incrementally
    for (a, tf) in p.corpus.articles().iter().zip(&p.tfs) {
        if (20.0..21.0).contains(&a.day) {
            repo.insert(DocId(a.id), Timestamp(a.day), tf.clone())
                .unwrap();
        }
    }
    repo.advance_to(Timestamp(21.0)).unwrap();
    assert!(repo.drift() < 1e-9, "drift {}", repo.drift());
}

/// §6.2.3: β=7 surfaces the late-window burst "Denmark Strike" (20078) as a
/// hot cluster in window 4 with perfect recall of its window documents.
#[test]
fn denmark_strike_detected_by_short_half_life() {
    let p = prep(1.0); // the topic has only 8 w4 docs; needs full scale
    let mut hits = 0;
    for seed in [11u64, 22, 33] {
        let (clustering, _, _) = window_eval(&p, 3, 7.0, seed);
        let windows = p.corpus.standard_windows();
        let labels: Labeling<u32> = windows[3]
            .article_indices
            .iter()
            .map(|&i| {
                let a = &p.corpus.articles()[i];
                (DocId(a.id), a.topic.0)
            })
            .collect();
        let e = evaluate(&clustering.member_lists(), &labels, MARKING_THRESHOLD);
        if e.detects(20078) {
            hits += 1;
        }
    }
    assert!(hits >= 2, "Denmark Strike detected in only {hits}/3 seeds");
}

/// §6.2.3: the w4 re-emergence of "Unabomber" (20077, ~15 late documents)
/// is caught by β=7 but not by β=30 (whose clusters absorb it into the noise
/// of the whole window). The contrast is directional, not absolute — either
/// side can flip on one K-means initialisation — so it is asserted over ten
/// seeds (detection base rates are ≈0.7 for β=7 vs ≈0.45 for β=30).
#[test]
fn unabomber_reemergence_is_a_short_half_life_exclusive() {
    let p = prep(1.0);
    let windows = p.corpus.standard_windows();
    let labels: Labeling<u32> = windows[3]
        .article_indices
        .iter()
        .map(|&i| {
            let a = &p.corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    let (mut det7, mut det30) = (0, 0);
    for seed in 1u64..=10 {
        let (c7, _, _) = window_eval(&p, 3, 7.0, seed);
        let (c30, _, _) = window_eval(&p, 3, 30.0, seed);
        if evaluate(&c7.member_lists(), &labels, MARKING_THRESHOLD).detects(20077) {
            det7 += 1;
        }
        if evaluate(&c30.member_lists(), &labels, MARKING_THRESHOLD).detects(20077) {
            det30 += 1;
        }
    }
    assert!(
        det7 > det30,
        "beta=7 should detect the re-emergence more often: {det7} vs {det30}"
    );
}

/// Weight sanity at the paper's Experiment 1 parameters: λ ≈ 0.9/day and
/// ε = 0.25 (γ = 2β).
#[test]
fn experiment1_decay_parameters() {
    let d = DecayParams::from_spans(7.0, 14.0).unwrap();
    assert!((d.lambda() - 0.9057).abs() < 1e-3);
    assert!((d.epsilon() - 0.25).abs() < 1e-12);
}
