//! # khy2006 — novelty-based incremental document clustering
//!
//! A from-scratch Rust reproduction of **Khy, Ishikawa & Kitagawa,
//! "Novelty-based Incremental Document Clustering for On-line Documents"
//! (ICDE 2006)**: a document-clustering method that biases clusters toward
//! *recent* documents via an exponential forgetting model, so the clustering
//! result answers "what are the hot topics right now?".
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`textproc`] — tokenizer, stop words, Porter stemmer, vocabulary,
//!   sparse vectors;
//! * [`corpus`] — a synthetic TDT2-like labelled news-stream generator;
//! * [`forgetting`] — the document forgetting model (weights, `Pr(d)`,
//!   `Pr(t)`, incremental statistics updates, expiration);
//! * [`similarity`] — the novelty-based similarity `sim(d_i,d_j)` and the
//!   O(1)-update cluster representatives of the paper's §4.4;
//! * [`core`] — the extended K-means with clustering index `G`, outlier
//!   handling, the incremental [`core::NoveltyPipeline`], and the
//!   multi-stream [`core::ShardedPipeline`] (deterministic DocId routing,
//!   query-time merge);
//! * [`baselines`] — cosine K-means, single-pass INCR, bucketed GAC;
//! * [`f2icm`] — F²ICM, the paper's predecessor method (ECDL 2001), with
//!   C²ICM cover-coefficient seed selection and K estimation;
//! * [`tdt`] — TDT tasks on the novelty similarity: first-story detection
//!   and topic tracking over an inverted-index search substrate;
//! * [`eval`] — contingency tables, micro/macro F1, topic marking, purity,
//!   NMI, ARI;
//! * [`obs`] — zero-dependency metrics (counters, histograms, phase timers),
//!   structured logging, and per-window snapshot exporters (JSON lines /
//!   Prometheus text); recording is off by default and never changes
//!   clustering results.
//!
//! # Quickstart
//!
//! ```
//! use khy2006::prelude::*;
//!
//! // 1. A forgetting model: 7-day half-life, 14-day life span.
//! let decay = DecayParams::from_spans(7.0, 14.0)?;
//! let config = ClusteringConfig { k: 2, seed: 1, ..ClusteringConfig::default() };
//! let mut pipeline = NoveltyPipeline::new(decay, config);
//!
//! // 2. Ingest documents as they arrive (here: trivial two-topic stream).
//! let analyzer = Pipeline::english();
//! let mut vocab = Vocabulary::new();
//! let texts = [
//!     (0, 0.0, "markets fell sharply in asian trading today"),
//!     (1, 0.1, "asian markets fell again as trading opened"),
//!     (2, 0.2, "the champions won the cup final after extra time"),
//!     (3, 0.3, "cup final victory crowns the champions season"),
//! ];
//! for (id, day, text) in texts {
//!     let tf = analyzer.analyze(text, &mut vocab).to_sparse();
//!     pipeline.ingest(DocId(id), Timestamp(day), tf)?;
//! }
//!
//! // 3. Recluster incrementally whenever you need fresh results.
//! let clustering = pipeline.recluster_incremental()?;
//! assert!(clustering.non_empty_clusters() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nidc_baselines as baselines;
pub use nidc_core as core;
pub use nidc_corpus as corpus;
pub use nidc_eval as eval;
pub use nidc_f2icm as f2icm;
pub use nidc_forgetting as forgetting;
pub use nidc_obs as obs;
pub use nidc_similarity as similarity;
pub use nidc_tdt as tdt;
pub use nidc_textproc as textproc;

/// The most common imports in one place.
pub mod prelude {
    pub use nidc_core::{
        cluster_batch, cluster_with_initial, Cluster, Clustering, ClusteringConfig, Criterion,
        GlobalClusterId, InitialState, MergedClustering, NoveltyPipeline, RepBackend, ShardRouter,
        ShardedPipeline, StitchedCluster, StitchedClustering, StreamShard,
        DEFAULT_STITCH_THRESHOLD,
    };
    pub use nidc_corpus::{Article, Corpus, Generator, GeneratorConfig, TopicId};
    pub use nidc_eval::{
        ari, evaluate, evaluate_sharded, nmi, purity, Labeling, ShardedEvaluation,
        MARKING_THRESHOLD,
    };
    pub use nidc_forgetting::{DecayParams, Repository, StatsSnapshot, Timestamp};
    pub use nidc_similarity::{ClusterIndex, ClusterRep, DocVectors};
    pub use nidc_textproc::{
        DocId, Pipeline, PorterStemmer, SparseVector, TermCounts, TermId, Tokenizer, Vocabulary,
    };
}
