//! Compare the novelty-based method against the baselines the paper
//! positions itself against (§2.2): cosine K-means, single-pass INCR, and
//! bucketed group-average GAC — all on the same tf vectors of one time
//! window, evaluated against ground-truth topics.
//!
//! Run with: `cargo run --release --example compare_baselines`

use khy2006::baselines::{gac, incr, kmeans, GacConfig, IncrConfig, KMeansConfig};
use khy2006::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Generator::new(GeneratorConfig {
        scale: 0.5,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs: Vec<SparseVector> = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();
    let windows = corpus.standard_windows();
    let w = &windows[3]; // Apr4–May3
    println!("window {} with {} articles, K = 24\n", w.label, w.len());

    let labels: Labeling<u32> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.topic.0)
        })
        .collect();
    let docs: Vec<(DocId, SparseVector)> = w
        .article_indices
        .iter()
        .map(|&i| (DocId(corpus.articles()[i].id), tfs[i].clone()))
        .collect();

    let report = |name: &str, clusters: &[Vec<DocId>]| {
        let e = evaluate(clusters, &labels, MARKING_THRESHOLD);
        println!(
            "  {name:<22} micro F1 {:.2}   macro F1 {:.2}   purity {:.2}   NMI {:.2}   clusters {}",
            e.micro_f1,
            e.macro_f1,
            purity(clusters, &labels),
            nmi(clusters, &labels),
            clusters.iter().filter(|c| !c.is_empty()).count()
        );
    };

    // --- novelty-based method (the paper's) ------------------------------
    let decay = DecayParams::from_spans(7.0, 30.0)?;
    let mut repo = Repository::new(decay);
    for &i in &w.article_indices {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())?;
    }
    repo.advance_to(Timestamp(w.end))?;
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k: 24,
        seed: 22,
        ..ClusteringConfig::default()
    };
    let clustering = cluster_batch(&vecs, &config)?;
    report("novelty (beta=7d)", &clustering.member_lists());

    // --- classic cosine K-means ------------------------------------------
    let km = kmeans(
        &docs,
        &KMeansConfig {
            k: 24,
            seed: 22,
            ..KMeansConfig::default()
        },
    );
    report("cosine K-means", &km.clusters);

    // --- single-pass INCR (Yang et al.) -----------------------------------
    let docs_t: Vec<(DocId, f64, SparseVector)> = w
        .article_indices
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.day, tfs[i].clone())
        })
        .collect();
    let ic = incr(
        &docs_t,
        &IncrConfig {
            threshold: 0.45,
            window_days: Some(14.0),
            max_clusters: 0,
        },
    );
    report("INCR (linear decay)", &ic);

    // --- GAC (bucketed group-average) --------------------------------------
    let gc = gac(
        &docs,
        &GacConfig {
            target_clusters: 24,
            bucket_size: 64,
            reduction: 0.5,
            ..GacConfig::default()
        },
    );
    report("GAC", &gc);

    println!("\n(novelty clustering trades a little F1 for recency bias; the baselines have no notion of novelty)");
    Ok(())
}
