//! Half-life comparison on one time window: cluster the same month of news
//! with β = 7 and β = 30 days and print the two hot-topic overviews side by
//! side — the paper's Experiment 2 in miniature.
//!
//! A short half-life surfaces late-breaking small topics (the paper's
//! "Denmark Strike" moment); a long half-life behaves like conventional
//! clustering and keeps month-old stories around.
//!
//! Run with: `cargo run --release --example hot_topics [window 1-6]`

use std::collections::BTreeMap;

use khy2006::corpus::TopicId;
use khy2006::prelude::*;

fn overview(
    corpus: &Corpus,
    tfs: &[SparseVector],
    window: &[usize],
    clock: f64,
    beta: f64,
    k: usize,
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let decay = DecayParams::from_spans(beta, 60.0)?;
    let mut repo = Repository::new(decay);
    for &i in window {
        let a = &corpus.articles()[i];
        repo.insert(DocId(a.id), Timestamp(a.day), tfs[i].clone())?;
    }
    repo.advance_to(Timestamp(clock))?;
    let vecs = DocVectors::build(&repo);
    let config = ClusteringConfig {
        k,
        seed: 22,
        ..ClusteringConfig::default()
    };
    let clustering = cluster_batch(&vecs, &config)?;

    let topic_of: BTreeMap<DocId, TopicId> = window
        .iter()
        .map(|&i| {
            let a = &corpus.articles()[i];
            (DocId(a.id), a.topic)
        })
        .collect();
    let mut ranked: Vec<&Cluster> = clustering
        .clusters()
        .iter()
        .filter(|c| c.len() >= 2)
        .collect();
    ranked.sort_by(|a, b| {
        b.rep()
            .g_term()
            .partial_cmp(&a.rep().g_term())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(ranked
        .iter()
        .take(8)
        .map(|c| {
            let mut counts: BTreeMap<TopicId, usize> = BTreeMap::new();
            let mut mean_age = 0.0;
            for d in c.members() {
                *counts.entry(topic_of[d]).or_insert(0) += 1;
                mean_age += clock - corpus.articles()[d.0 as usize].day;
            }
            mean_age /= c.len() as f64;
            let (top, n) = counts
                .iter()
                .max_by_key(|(_, &n)| n)
                .map(|(t, &n)| (*t, n))
                .expect("non-empty");
            let name = corpus.topic_name(top).unwrap_or("?");
            format!("{name} [{n}/{} docs, avg age {mean_age:.0}d]", c.len())
        })
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window_no: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let corpus = Generator::new(GeneratorConfig::default()).generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs: Vec<SparseVector> = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();

    let windows = corpus.standard_windows();
    let w = &windows[window_no - 1];
    println!(
        "hot-topic overview for {} ({} articles), K=24\n",
        w.label,
        w.len()
    );
    for beta in [7.0, 30.0] {
        println!("--- half-life span {beta} days ---");
        for (i, line) in overview(&corpus, &tfs, &w.article_indices, w.end, beta, 24)?
            .iter()
            .enumerate()
        {
            println!("  {}. {line}", i + 1);
        }
        println!();
    }
    println!(
        "(docs with high average age survive the 30-day overview but drop out of the 7-day one)"
    );
    Ok(())
}
