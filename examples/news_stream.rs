//! On-line news-stream clustering: a producer thread replays the synthetic
//! TDT2-like corpus day by day over a channel; the consumer ingests each
//! day's articles into the [`NoveltyPipeline`] and re-clusters every five
//! days (one "news program" cadence), printing the evolving hot topics —
//! the paper's §5.2 deployment scenario.
//!
//! Run with: `cargo run --release --example news_stream`
//! (set `NIDC_SCALE`, default 0.25, for a bigger/smaller stream)

use std::collections::BTreeMap;
use std::thread;

use crossbeam::channel;
use parking_lot::Mutex;

use khy2006::corpus::TopicId;
use khy2006::prelude::*;

/// One day's worth of articles.
struct DayBatch {
    day: f64,
    articles: Vec<(DocId, TopicId, SparseVector)>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::var("NIDC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let corpus = Generator::new(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    println!(
        "streaming {} articles over {} days (scale {scale})\n",
        corpus.len(),
        corpus.articles().last().map_or(0.0, |a| a.day).ceil()
    );

    // Shared topic-name table for display (written by producer, read by
    // consumer — a tiny demonstration of the library being Sync-friendly).
    let names: Mutex<BTreeMap<TopicId, String>> = Mutex::new(BTreeMap::new());
    for t in corpus.topics() {
        names.lock().insert(t.id, t.name.clone());
    }

    let (tx, rx) = channel::bounded::<DayBatch>(4);

    thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        // Producer: tokenise and ship one day at a time.
        let corpus_ref = &corpus;
        scope.spawn(move || {
            let analyzer = Pipeline::raw();
            let mut vocab = Vocabulary::new();
            let mut current = DayBatch {
                day: 0.0,
                articles: Vec::new(),
            };
            for a in corpus_ref.articles() {
                let day = a.day.floor();
                if day > current.day && !current.articles.is_empty() {
                    let done = std::mem::replace(
                        &mut current,
                        DayBatch {
                            day,
                            articles: Vec::new(),
                        },
                    );
                    if tx.send(done).is_err() {
                        return;
                    }
                }
                current.day = day;
                let tf = analyzer.analyze(&a.text, &mut vocab).to_sparse();
                current.articles.push((DocId(a.id), a.topic, tf));
            }
            let _ = tx.send(current);
        });

        // Consumer: the on-line clustering pipeline.
        let decay = DecayParams::from_spans(7.0, 21.0)?;
        let config = ClusteringConfig {
            k: 16,
            seed: 7,
            ..ClusteringConfig::default()
        };
        let mut pipeline = NoveltyPipeline::new(decay, config);
        let mut topic_of: BTreeMap<DocId, TopicId> = BTreeMap::new();
        let mut last_report = -1.0f64;

        for batch in rx {
            let day = batch.day;
            for (id, topic, _) in &batch.articles {
                topic_of.insert(*id, *topic);
            }
            pipeline.ingest_batch(
                Timestamp(day + 0.99),
                batch.articles.into_iter().map(|(id, _, tf)| (id, tf)),
            )?;
            if day - last_report >= 5.0 {
                last_report = day;
                let clustering = pipeline.recluster_incremental()?;
                // rank clusters by their G-term (hotness)
                let mut hot: Vec<&Cluster> = clustering
                    .clusters()
                    .iter()
                    .filter(|c| c.len() >= 2)
                    .collect();
                hot.sort_by(|a, b| {
                    b.rep()
                        .g_term()
                        .partial_cmp(&a.rep().g_term())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let names = names.lock();
                let headline: Vec<String> = hot
                    .iter()
                    .take(3)
                    .map(|c| {
                        // majority ground-truth topic of the cluster, for display
                        let mut counts: BTreeMap<TopicId, usize> = BTreeMap::new();
                        for d in c.members() {
                            if let Some(&t) = topic_of.get(d) {
                                *counts.entry(t).or_insert(0) += 1;
                            }
                        }
                        let top = counts
                            .iter()
                            .max_by_key(|(_, &n)| n)
                            .map(|(t, _)| names.get(t).cloned().unwrap_or_else(|| t.to_string()))
                            .unwrap_or_else(|| "?".into());
                        format!("{} ({} docs)", top, c.len())
                    })
                    .collect();
                println!(
                    "day {:>3}: {} live docs, {} clusters | hot: {}",
                    day as u32,
                    pipeline.repository().len(),
                    clustering.non_empty_clusters(),
                    headline.join(" · ")
                );
            }
        }
        Ok(())
    })?;
    Ok(())
}
