//! Service-restart survival: run the on-line pipeline for half the stream,
//! checkpoint it to JSON, "crash", restore from the checkpoint, and finish —
//! then verify the restored run ends in exactly the same clustering state a
//! never-interrupted run reaches.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use khy2006::prelude::*;

fn ingest_range(
    pipeline: &mut NoveltyPipeline,
    corpus: &Corpus,
    tfs: &[SparseVector],
    days: std::ops::Range<f64>,
) -> Result<(), Box<dyn std::error::Error>> {
    for (a, tf) in corpus.articles().iter().zip(tfs) {
        if days.contains(&a.day) {
            pipeline.ingest(DocId(a.id), Timestamp(a.day), tf.clone())?;
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Generator::new(GeneratorConfig {
        scale: 0.1,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();
    let tfs: Vec<SparseVector> = corpus
        .articles()
        .iter()
        .map(|a| analyzer.analyze(&a.text, &mut vocab).to_sparse())
        .collect();

    let decay = DecayParams::from_spans(7.0, 21.0)?;
    let config = ClusteringConfig {
        k: 12,
        seed: 5,
        ..ClusteringConfig::default()
    };

    // --- the interrupted service -----------------------------------------
    let mut service = NoveltyPipeline::new(decay, config.clone());
    ingest_range(&mut service, &corpus, &tfs, 0.0..30.0)?;
    service.recluster_incremental()?;
    ingest_range(&mut service, &corpus, &tfs, 30.0..60.0)?;
    service.recluster_incremental()?;

    // checkpoint to disk, then "crash"
    let path = std::env::temp_dir().join("nidc_checkpoint.json");
    service.save_json(std::fs::File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "checkpointed {} live docs at {} ({bytes} bytes) to {}",
        service.repository().len(),
        service.repository().now(),
        path.display()
    );
    drop(service);

    // --- restore and finish the stream ------------------------------------
    let mut restored = NoveltyPipeline::load_json(std::fs::File::open(&path)?)?;
    println!(
        "restored: {} live docs at {}",
        restored.repository().len(),
        restored.repository().now()
    );
    ingest_range(&mut restored, &corpus, &tfs, 60.0..90.0)?;
    let after_restart = restored.recluster_incremental()?;

    // --- the reference service that never crashed -------------------------
    let mut reference = NoveltyPipeline::new(decay, config);
    ingest_range(&mut reference, &corpus, &tfs, 0.0..30.0)?;
    reference.recluster_incremental()?;
    ingest_range(&mut reference, &corpus, &tfs, 30.0..60.0)?;
    reference.recluster_incremental()?;
    ingest_range(&mut reference, &corpus, &tfs, 60.0..90.0)?;
    let uninterrupted = reference.recluster_incremental()?;

    assert_eq!(
        after_restart.member_lists(),
        uninterrupted.member_lists(),
        "restart changed the clustering!"
    );
    assert_eq!(after_restart.outliers(), uninterrupted.outliers());
    println!(
        "restart-transparent: {} clusters, {} outliers, G = {:.3e} — identical to the uninterrupted run",
        after_restart.non_empty_clusters(),
        after_restart.outliers().len(),
        after_restart.g()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
