//! Quickstart: cluster a handful of raw-text news snippets with the
//! novelty-based pipeline and print the clusters with their hottest terms.
//!
//! Run with: `cargo run --example quickstart`

use khy2006::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Forgetting model: documents halve in weight every 7 days and are
    // dropped entirely after 21 days.
    let decay = DecayParams::from_spans(7.0, 21.0)?;
    let config = ClusteringConfig {
        k: 3,
        seed: 7,
        ..ClusteringConfig::default()
    };
    let mut pipeline = NoveltyPipeline::new(decay, config);

    // A miniature news stream: two stories in week 1, one breaking now.
    let stream: &[(u64, f64, &str)] = &[
        (
            0,
            0.0,
            "Asian markets fell sharply as the currency crisis deepened across the region",
        ),
        (
            1,
            0.2,
            "The currency crisis pushed asian stock markets to new lows in heavy trading",
        ),
        (
            2,
            0.5,
            "Olympic organizers unveiled the stadium for the winter games opening ceremony",
        ),
        (
            3,
            0.9,
            "Winter games officials said the olympic stadium is ready for the ceremony",
        ),
        (
            4,
            1.3,
            "Markets across asia steadied after the central banks intervened in the crisis",
        ),
        (
            5,
            8.0,
            "A massive strike by transport workers paralyzed the capital this morning",
        ),
        (
            6,
            8.2,
            "Transport workers extended their strike as talks with the government stalled",
        ),
        (
            7,
            8.5,
            "Striking transport workers left commuters stranded for a second day",
        ),
    ];

    let analyzer = Pipeline::english();
    let mut vocab = Vocabulary::new();
    for &(id, day, text) in stream {
        let tf = analyzer.analyze(text, &mut vocab).to_sparse();
        pipeline.ingest(DocId(id), Timestamp(day), tf)?;
    }

    // Cluster "today" (day 8.5). The week-old stories have lost ~55% of
    // their weight; the strike is the hot topic.
    let clustering = pipeline.recluster_incremental()?;

    println!(
        "clustering index G = {:.3e}, {} iterations\n",
        clustering.g(),
        clustering.iterations()
    );
    let mut ranked: Vec<_> = clustering
        .clusters()
        .iter()
        .filter(|c| !c.is_empty())
        .collect();
    ranked.sort_by(|a, b| {
        b.rep()
            .g_term()
            .partial_cmp(&a.rep().g_term())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (rank, cluster) in ranked.iter().enumerate() {
        let terms: Vec<String> = cluster
            .rep()
            .top_terms(4)
            .into_iter()
            .filter_map(|(t, _)| vocab.term(t).map(str::to_owned))
            .collect();
        println!(
            "#{rank} hot cluster: docs {:?}\n    keywords: {}",
            cluster.members().iter().map(|d| d.0).collect::<Vec<_>>(),
            terms.join(", ")
        );
    }
    if !clustering.outliers().is_empty() {
        println!("\noutliers: {:?}", clustering.outliers());
    }
    Ok(())
}
