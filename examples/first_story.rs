//! First-story detection over the synthetic news stream: every article is
//! assessed on arrival ("is this the first story of a new topic?") and the
//! verdicts are scored against ground truth — a TDT-style evaluation the
//! labelled corpus makes possible.
//!
//! Under the forgetting model, ground truth itself is subtle: a topic that
//! disappears for longer than the life span and then returns *is* news
//! again (the paper's "Unabomber re-emergence" narrative). We therefore
//! count a document as a true first story if no document of its topic
//! appeared within the preceding life span γ.
//!
//! Run with: `cargo run --release --example first_story`

use std::collections::BTreeMap;

use khy2006::corpus::TopicId;
use khy2006::prelude::*;
use khy2006::tdt::{FirstStoryDetector, FsdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::var("NIDC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let corpus = Generator::new(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .generate();
    let analyzer = Pipeline::raw();
    let mut vocab = Vocabulary::new();

    let gamma = 21.0;
    let decay = DecayParams::from_spans(7.0, gamma)?;
    let mut fsd = FirstStoryDetector::new(
        decay,
        FsdConfig {
            threshold: 0.10,
            top_k: 3,
            rebuild_every: 1.0,
        },
    );

    // ground truth: first story = no same-topic article within the last γ days
    let mut last_seen: BTreeMap<TopicId, f64> = BTreeMap::new();
    let (mut tp, mut fp, mut fn_, mut tn) = (0u32, 0u32, 0u32, 0u32);
    let mut examples: Vec<String> = Vec::new();

    for a in corpus.articles() {
        let truth = last_seen
            .get(&a.topic)
            .is_none_or(|&prev| a.day - prev > gamma);
        last_seen.insert(a.topic, a.day);

        let tf = analyzer.analyze(&a.text, &mut vocab).to_sparse();
        let decision = fsd.process(DocId(a.id), Timestamp(a.day), tf)?;

        match (truth, decision.is_first_story) {
            (true, true) => {
                tp += 1;
                if examples.len() < 8 {
                    examples.push(format!(
                        "day {:>5.1}  NEW  {} (score {:.2})",
                        a.day,
                        corpus.topic_name(a.topic).unwrap_or("?"),
                        decision.score
                    ));
                }
            }
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }

    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    println!(
        "first-story detection over {} articles ({} true first stories):",
        corpus.len(),
        tp + fn_
    );
    println!(
        "  precision {precision:.2}   recall {recall:.2}   F1 {f1:.2}   (tp {tp}, fp {fp}, fn {fn_}, tn {tn})"
    );
    println!("\nsample detections:");
    for e in examples {
        println!("  {e}");
    }
    println!(
        "\n(random guessing at the true base rate would score F1 ≈ {:.2};",
        2.0 * (tp + fn_) as f64 / (corpus.len() as f64 + (tp + fn_) as f64)
    );
    println!(" first-story detection is the hardest TDT task — state-of-the-art TDT-era");
    println!(" systems also missed a large share at comparable false-alarm rates)");
    Ok(())
}
