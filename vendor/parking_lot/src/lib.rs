//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives with
//! parking_lot's poison-free API (`lock()` returns the guard directly).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0); // parking_lot semantics: no poison error
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
