//! Offline stand-in for `proptest`: deterministic strategy-based property
//! testing without external dependencies.
//!
//! Supports the API subset this workspace uses: range/tuple/`Just`/vec
//! strategies, `prop_map`, `prop_oneof!`, a regex-subset string strategy
//! (`"[a-z]{1,30}"`-style character classes and `.`), `prop::bool::ANY`,
//! `ProptestConfig::with_cases`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated from a seed derived deterministically from the test
//! name, so failures reproduce exactly across runs. There is no shrinking:
//! a failing case reports its assertion message and case index.

/// The RNG handed to strategies — the vendored deterministic `StdRng`.
pub type TestRng = rand::rngs::StdRng;

/// Why a test case did not pass: rejected by `prop_assume!`, or failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The generated inputs do not satisfy the test's preconditions.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only the case count is tunable.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of random values of one type.
    ///
    /// Object-safe: `generate` takes `&self`, and the combinator methods
    /// carry `Self: Sized` bounds.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value from the RNG.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
    }

    // --- regex-subset string strategy ------------------------------------

    /// One repeatable unit of the pattern: a set of char ranges and a
    /// repetition count range.
    struct Atom {
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    /// Characters `.` may produce: printable ASCII plus a few multi-byte
    /// samples, excluding `\n` per regex semantics.
    const DOT_EXTRA: &[char] = &['é', 'ß', 'Ω', '猫', '😀'];

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '.' => {
                    i += 1;
                    vec![(' ', '~')] // DOT_EXTRA handled at sample time
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "proptest stand-in: unterminated char class in {pat:?}"
                    );
                    i += 1; // ']'
                    ranges
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("proptest stand-in: unterminated {m,n}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().expect("bad {m,n}"), n.parse().expect("bad {m,n}")),
                    None => {
                        let n: usize = body.parse().expect("bad {n}");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    fn sample_char(ranges: &[(char, char)], dot: bool, rng: &mut TestRng) -> char {
        if dot && rng.gen_range(0u32..16) == 0 {
            return DOT_EXTRA[rng.gen_range(0..DOT_EXTRA.len())];
        }
        let total: u32 = ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum();
        let mut pick = rng.gen_range(0..total);
        for &(lo, hi) in ranges {
            let span = hi as u32 - lo as u32 + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick).unwrap();
            }
            pick -= span;
        }
        unreachable!("sample index within total span")
    }

    /// String strategies from a regex subset: sequences of `.` / `[class]` /
    /// literal atoms, each with an optional `{m,n}` or `{n}` quantifier.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let n = rng.gen_range(atom.min..=atom.max);
                let dot = atom.ranges == [(' ', '~')];
                for _ in 0..n {
                    out.push(sample_char(&atom.ranges, dot, rng));
                }
            }
            out
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// A strategy for `Vec<S::Value>` with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    /// Derives a stable per-test seed from the test name (FNV-1a).
    fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` until `config.cases` cases pass; panics on the first
    /// failure or when rejects (from `prop_assume!`) overwhelm progress.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: too many rejected cases ({rejected}) — \
                         prop_assume! condition is almost never satisfied"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {passed}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($config:expr;) => {};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Rejects the current test case (retried with new inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        for _ in 0..200 {
            let (a, b) = (0u64..1000, 2u32..8).generate(&mut rng);
            assert!(a < 1000);
            assert!((2..8).contains(&b));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        use crate::strategy::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let strat = prop::collection::vec((0u8..20, 1u8..5), 1..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn string_strategy_matches_class_pattern() {
        use crate::strategy::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..100 {
            let s = "[a-z]{1,30}".generate(&mut rng);
            assert!((1..=30).contains(&s.chars().count()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let t = "[A-Za-z0-9]{1,20}".generate(&mut rng);
            assert!(t.bytes().all(|b| b.is_ascii_alphanumeric()));
            let u = ".{0,400}".generate(&mut rng);
            assert!(u.chars().count() <= 400);
            assert!(!u.contains('\n'));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        use crate::strategy::Strategy;
        let strat = prop_oneof![
            (0u8..1).prop_map(|_| 0usize),
            (0u8..1).prop_map(|_| 1usize),
            crate::strategy::Just(2usize),
        ];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let collect = |name: &str| {
            let mut out = Vec::new();
            crate::test_runner::run_cases(&ProptestConfig::with_cases(10), name, |rng| {
                out.push((0u64..1_000_000).generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, assume, assert, early return.
        #[test]
        fn macro_smoke(x in 0u32..100, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assume!(x != 13);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(x < 100, "x = {x}");
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }
}
