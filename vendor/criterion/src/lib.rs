//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same surface (`Criterion`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Under `cargo bench` (cargo passes `--bench`) each benchmark is warmed
//! up once and then sampled until `sample_size` samples or a small time
//! budget is reached, and a `name  time: [min mean max]` line is printed.
//! Under `cargo test` or a plain run, each benchmark body executes exactly
//! once so the target stays fast and still exercises the code.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The stand-in runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Measure and report (under `cargo bench`).
    Measure,
    /// Run each benchmark body once (under `cargo test` / plain run).
    Once,
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self {
            sample_size: 100,
            budget: Duration::from_secs(3),
            mode: if bench_mode {
                Mode::Measure
            } else {
                Mode::Once
            },
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement time budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Defines a benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            budget: self.budget,
            mode: self.mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        match self.mode {
            Mode::Once => println!("bench {id} ... ok (ran once, not measured)"),
            Mode::Measure => {
                let s = &bencher.samples;
                if s.is_empty() {
                    println!("bench {id} ... no samples");
                } else {
                    let min = s.iter().copied().min().unwrap();
                    let max = s.iter().copied().max().unwrap();
                    let mean = s.iter().sum::<Duration>() / s.len() as u32;
                    println!(
                        "{id:<40} time: [{} {} {}] ({} samples)",
                        fmt_duration(min),
                        fmt_duration(mean),
                        fmt_duration(max),
                        s.len(),
                    );
                }
            }
        }
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Runs and times one benchmark's iterations.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| (), |()| routine());
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, setup: S, routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(setup, routine);
    }

    fn run<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Once {
            let input = setup();
            std::hint::black_box(routine(input));
            return;
        }
        // warm-up
        let input = setup();
        std::hint::black_box(routine(input));
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn once_mode_runs_each_body() {
        let mut c = Criterion {
            sample_size: 10,
            budget: Duration::from_millis(50),
            mode: Mode::Once,
        };
        sample_bench(&mut c); // must not hang or panic
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            budget: Duration::from_millis(200),
            mode: Mode::Measure,
        };
        let mut counted = 0u32;
        c.bench_function("counted", |b| {
            b.iter(|| {
                counted += 1;
            })
        });
        // warm-up + at least one sample
        assert!(counted >= 2);
    }
}
