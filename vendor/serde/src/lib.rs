//! Offline stand-in for `serde`.
//!
//! The real serde is unavailable in this workspace's build environment
//! (no crates.io access), so serialisation is defined against a small JSON
//! value tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] converts a value into a [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the vendored `serde_derive`)
//!   generates both for plain structs (named fields and newtypes).
//!
//! The vendored `serde_json` crate layers JSON text parsing/printing on the
//! same [`Value`] type.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-style number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F64(_) => None,
        }
    }
}

/// The JSON value tree shared by the vendored `serde` and `serde_json`.
///
/// Object fields preserve insertion order (serialisation is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, fields in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A deserialisation error: a message plus the reverse field path.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
    path: Vec<String>,
}

impl DeError {
    /// A fresh error with `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// Annotates the error with the field it occurred under.
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.push(field.to_string());
        self
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            let mut path: Vec<&str> = self.path.iter().map(String::as_str).collect();
            path.reverse();
            write!(f, "at {}: {}", path.join("."), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Serialisation into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialisation from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls ------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::new("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected pair"))?;
        if items.len() != 2 {
            return Err(DeError::new("expected array of length 2"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected triple"))?;
        if items.len() != 3 {
            return Err(DeError::new("expected array of length 3"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert!(Option::<u64>::from_value(&o.to_value()).unwrap().is_none());
    }

    #[test]
    fn index_and_get() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], Value::Bool(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Null).is_err());
    }
}
