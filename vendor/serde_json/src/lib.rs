//! Offline stand-in for `serde_json`: JSON text parsing and printing over
//! the vendored `serde` crate's [`Value`] tree.
//!
//! Supports the API subset this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`from_slice`],
//! [`from_reader`], [`to_value`], the [`json!`] macro, [`Value`] and
//! [`Error`] (convertible into `std::io::Error`).

use std::fmt;

pub use serde::{Number, Value};

/// A JSON error: parse failure, deserialisation mismatch, or I/O failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// --- printing -------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: &Number, out: &mut String) {
    match *n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting; integral
                // floats keep a ".0" so they parse back as floats.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; mirror serde_json by emitting null
                out.push_str("null");
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialises `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises `value` to human-readable indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialises `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Converts any serialisable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] into a deserialisable type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// --- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into any deserialisable type.
pub fn from_slice<T: serde::Deserialize>(input: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(input).map_err(|_| Error::new("input is not utf-8"))?;
    from_str(s)
}

/// Reads `reader` to the end and parses the JSON text.
pub fn from_reader<R: std::io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Builds a [`Value`] from JSON-like literal syntax; non-literal
/// subexpressions are serialised via [`serde::Serialize`].
///
/// Each container position is matched twice: first with single-token-tree
/// elements (which allows `null` literals and recursive `{...}`/`[...]`
/// nesting), then with general `expr` elements (which allows method chains
/// like `x.len()` but not `null`). An arm only matches when *every*
/// element fits its fragment kind, so mixed multi-token values fall
/// through to the `expr` arms as a group.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$elem).expect("json!: serialisable value") ),*
        ])
    };
    ({ $($key:tt : $value:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($value)) ),*
        ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (
                $key.to_string(),
                $crate::to_value(&$value).expect("json!: serialisable value"),
            ) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json!: serialisable value")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "a": [1, 2.5, true, null],
            "b": {"nested": "text with \"quotes\" and \\ slash"},
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"k": [1, 2], "s": "x"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_keep_integrality() {
        let v: Value = from_str("[1, -2, 3.5, 1e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_f64(), Some(1000.0));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [3.25f64, 0.1, 1e-9, 12345.678901234567] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn json_macro_serialises_expressions() {
        let ids = vec![1u64, 2, 3];
        let v = json!({"ids": ids, "n": 3usize});
        assert_eq!(v["ids"][0].as_u64(), Some(1));
        assert_eq!(v["n"].as_u64(), Some(3));
    }
}
