//! Offline stand-in for `crossbeam`: the `channel` module backed by
//! `std::sync::mpsc` (bounded channels via `sync_channel`).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered or all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
