//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the struct shapes this workspace actually uses:
//!
//! * named-field structs → JSON objects (field order preserved);
//! * single-field tuple structs (newtypes) → the inner value, transparently.
//!
//! Enums, generics and `#[serde(...)]` attributes are not supported; the
//! macro panics at compile time if it meets one, which is the signal to
//! extend it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a struct definition.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named { name: String, fields: Vec<String> },
    /// `struct S(T);` — a transparent newtype.
    Newtype { name: String },
}

fn parse_struct(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    // skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`)
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                other => panic!("serde derive: expected struct name, got {other:?}"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("serde derive stand-in does not support enums")
            }
            Some(other) => panic!("serde derive: unexpected token {other}"),
            None => panic!("serde derive: ran out of tokens before `struct`"),
        }
    };
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner = parse_tuple_arity(g.stream());
            if inner != 1 {
                panic!("serde derive stand-in supports only single-field tuple structs");
            }
            Shape::Newtype { name }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde derive stand-in does not support generic structs")
        }
        other => panic!("serde derive: expected struct body, got {other:?}"),
    }
}

/// Extracts field names from the brace group of a named-field struct.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // skip field attributes and visibility
        let field = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde derive: unexpected field token {other}"),
                None => return fields,
            }
        };
        fields.push(field);
        // expect `:` then the type, up to a top-level comma
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct body.
fn parse_tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut saw_any = false;
    for tok in stream {
        saw_any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_struct(input) {
        Shape::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
    };
    code.parse().expect("serde derive: generated code parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_struct(input) {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| e.in_field({f:?}))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_object().is_none() {{\n\
                             return Err(::serde::DeError::new(\
                                 concat!(\"expected object for \", {name:?})));\n\
                         }}\n\
                         Ok({name} {{\n\
                             {inits}\
                         }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
    };
    code.parse().expect("serde derive: generated code parses")
}
