//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this vendored implementation of
//! the exact API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a documented,
//! stable stream: the same seed always produces the same sequence on every
//! platform, which is what the workspace's determinism contracts require.
//! The stream is **not** the same as the upstream `rand` crate's `StdRng`
//! (ChaCha12); seed constants in tests were chosen against this stream.

/// Low-level entropy source: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their "natural" domain (the stand-in for
/// `rand`'s `Standard` distribution): integers over their full range, `f64`
/// over `[0, 1)`, `bool` as a fair coin.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method) — unbiased and deterministic.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds xoshiro and expands `u64` seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&x| x == 0) {
                // xoshiro must not start from the all-zero state
                let mut sm = SplitMix64(0xDEAD_BEEF);
                for x in &mut s {
                    *x = sm.next();
                }
            }
            Self { s }
        }
    }

    /// Alias: this stand-in uses one generator for every role.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic given the RNG state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&y));
            let z = rng.gen_range(-3i32..9);
            assert!((-3..9).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
